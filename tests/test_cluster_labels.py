"""Tests for repro.cluster.labels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.labels import (
    indicator_from_labels,
    labels_from_indicator,
    relabel_consecutive,
    repair_empty_clusters,
)
from repro.exceptions import ValidationError


class TestRelabelConsecutive:
    def test_first_appearance_order(self):
        out = relabel_consecutive([5, 5, 2, 7, 2])
        np.testing.assert_array_equal(out, [0, 0, 1, 2, 1])

    def test_already_consecutive(self):
        np.testing.assert_array_equal(
            relabel_consecutive([0, 1, 2]), [0, 1, 2]
        )

    def test_negative_values_ok(self):
        out = relabel_consecutive([-4, -4, 3])
        np.testing.assert_array_equal(out, [0, 0, 1])


class TestIndicator:
    def test_round_trip(self):
        labels = np.array([0, 2, 1, 2])
        y = indicator_from_labels(labels)
        assert y.shape == (4, 3)
        np.testing.assert_array_equal(labels_from_indicator(y), labels)

    def test_rows_one_hot(self):
        y = indicator_from_labels([0, 1, 1, 0], 3)
        np.testing.assert_allclose(y.sum(axis=1), 1.0)
        assert y.shape == (4, 3)

    def test_label_out_of_range(self):
        with pytest.raises(ValidationError, match="n_clusters"):
            indicator_from_labels([0, 3], 2)

    def test_negative_labels_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            indicator_from_labels([-1, 0])

    @settings(deadline=None, max_examples=40)
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=30))
    def test_property_round_trip(self, labels):
        y = indicator_from_labels(labels, 6)
        np.testing.assert_array_equal(labels_from_indicator(y), labels)


class TestRepairEmptyClusters:
    def test_no_op_when_complete(self):
        labels = np.array([0, 1, 2, 0, 1, 2])
        out = repair_empty_clusters(labels, 3)
        np.testing.assert_array_equal(out, labels)

    def test_fills_all_clusters(self):
        labels = np.zeros(10, dtype=np.int64)
        out = repair_empty_clusters(labels, 4)
        assert np.all(np.bincount(out, minlength=4) >= 1)

    def test_uses_scores_to_pick_victims(self):
        # Rows 0/1 strongly prefer cluster 0; row 2 barely does and scores
        # high on cluster 1 — it must be the one moved.
        scores = np.array([[10.0, 0.0], [9.0, 0.0], [1.0, 0.9]])
        labels = np.zeros(3, dtype=np.int64)
        out = repair_empty_clusters(labels, 2, scores=scores)
        np.testing.assert_array_equal(out, [0, 0, 1])

    def test_impossible_repair_rejected(self):
        with pytest.raises(ValidationError, match="cannot"):
            repair_empty_clusters(np.zeros(2, dtype=np.int64), 5)

    def test_score_shape_checked(self):
        with pytest.raises(ValidationError, match="scores"):
            repair_empty_clusters(
                np.zeros(3, dtype=np.int64), 2, scores=np.zeros((3, 5))
            )

    @settings(deadline=None, max_examples=40)
    @given(
        st.lists(st.integers(0, 3), min_size=4, max_size=30),
        st.integers(1, 4),
    )
    def test_property_every_cluster_nonempty(self, labels, c):
        out = repair_empty_clusters(np.array(labels), c)
        counts = np.bincount(out, minlength=c)
        assert np.all(counts[:c] >= 1)
