"""Tests for repro.evaluation (registry, runner, tables, sweeps, curves)."""

import numpy as np
import pytest

from repro.evaluation.curves import ConvergenceCurve, convergence_curve, sparkline
from repro.evaluation.registry import default_method_registry, make_method
from repro.evaluation.runner import (
    AggregatedScore,
    run_experiment,
    run_method_once,
)
from repro.evaluation.sweeps import grid_sweep
from repro.evaluation.tables import (
    format_metric_table,
    format_rows,
    format_timing_table,
    summarize_ranks,
)
from repro.exceptions import ValidationError


class TestRegistry:
    def test_all_rows_present(self):
        registry = default_method_registry()
        expected = {
            "SC_best",
            "SC_worst",
            "ConcatKMeans",
            "ConcatSC",
            "KernelAddSC",
            "CoRegSC",
            "CoTrainSC",
            "AMGL",
            "MLAN",
            "MVKM",
            "AWP",
            "SwMC",
            "TwoStageMVSC",
            "UMSC",
        }
        assert set(registry) == expected

    def test_make_method_constructs(self, small_dataset):
        model = make_method("KernelAddSC", 3, random_state=0)
        labels = model.fit_predict(small_dataset.views)
        assert labels.shape == (90,)

    def test_make_method_unknown(self):
        with pytest.raises(ValidationError, match="unknown method"):
            make_method("Zoidberg", 3)

    def test_oracle_not_constructible(self):
        with pytest.raises(ValidationError, match="oracle"):
            make_method("SC_best", 3)


class TestAggregatedScore:
    def test_from_values(self):
        agg = AggregatedScore.from_values([0.5, 0.7])
        assert agg.mean == pytest.approx(0.6)
        assert agg.std == pytest.approx(0.1)
        assert str(agg) == "0.600±0.100"


class TestRunner:
    def test_run_method_once_regular(self, small_dataset):
        registry = default_method_registry()
        scores, seconds = run_method_once(
            registry["KernelAddSC"], small_dataset, seed=0
        )
        assert set(scores) == {"acc", "nmi", "purity"}
        assert all(0 <= v <= 1 for v in scores.values())
        assert seconds > 0

    def test_oracle_best_geq_worst(self, small_dataset):
        registry = default_method_registry()
        best, _ = run_method_once(registry["SC_best"], small_dataset, seed=0)
        worst, _ = run_method_once(registry["SC_worst"], small_dataset, seed=0)
        for m in best:
            assert best[m] >= worst[m]

    def test_run_experiment_structure(self, small_dataset):
        results = run_experiment(
            small_dataset,
            methods=["KernelAddSC", "UMSC"],
            n_runs=2,
            metrics=("acc", "nmi"),
        )
        assert set(results) == {"KernelAddSC", "UMSC"}
        for scores in results.values():
            assert scores.n_runs == 2
            assert set(scores.scores) == {"acc", "nmi"}
            assert len(scores.scores["acc"].values) == 2

    def test_run_experiment_validation(self, small_dataset):
        with pytest.raises(ValidationError):
            run_experiment(small_dataset, n_runs=0)
        with pytest.raises(ValidationError, match="unknown methods"):
            run_experiment(small_dataset, methods=["NotAMethod"])
        with pytest.raises(ValidationError, match="unknown metrics"):
            run_experiment(small_dataset, metrics=("acc", "f-zeta"))


class TestTables:
    def test_format_rows_alignment(self):
        text = format_rows(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_rows(["a"], [["1", "2"]])

    def test_format_metric_table_marks_best(self, small_dataset):
        results = run_experiment(
            small_dataset, methods=["KernelAddSC", "ConcatSC"], n_runs=1
        )
        table = format_metric_table({small_dataset.name: results}, "acc")
        assert "*" in table
        assert "KernelAddSC" in table and "ConcatSC" in table

    def test_timing_table(self, small_dataset):
        results = run_experiment(small_dataset, methods=["ConcatSC"], n_runs=1)
        text = format_timing_table({small_dataset.name: results})
        assert "s" in text

    def test_summarize_ranks(self, small_dataset):
        results = run_experiment(
            small_dataset, methods=["KernelAddSC", "ConcatSC"], n_runs=1
        )
        ranks = summarize_ranks({small_dataset.name: results}, "acc")
        assert set(ranks) == {"KernelAddSC", "ConcatSC"}
        assert sorted(ranks.values()) == [1.0, 2.0]


class TestSweeps:
    def test_grid_sweep_covers_product(self, small_dataset):
        from repro.core import UnifiedMVSC

        def build(random_state=0, **params):
            model = UnifiedMVSC(3, random_state=random_state, **params)

            class _A:
                def fit_predict(self, views):
                    return model.fit(views).labels

            return _A()

        result = grid_sweep(
            small_dataset,
            build,
            {"lam": [0.1, 1.0], "gamma": [2.0]},
            metrics=("acc",),
        )
        assert len(result.points) == 2
        best = result.best("acc")
        assert best.scores["acc"] >= min(p.scores["acc"] for p in result.points)
        series = result.series("lam", "acc")
        assert [v for v, _ in series] == [0.1, 1.0]

    def test_empty_grid_rejected(self, small_dataset):
        with pytest.raises(ValidationError):
            grid_sweep(small_dataset, lambda **k: None, {})


class TestCurves:
    def test_convergence_curve_monotone_ish(self, small_dataset):
        curve = convergence_curve(small_dataset, max_iter=10, random_state=0)
        assert isinstance(curve, ConvergenceCurve)
        assert curve.n_iter >= 1
        h = curve.history
        for a, b in zip(h, h[1:]):
            assert b <= a + 1e-3 * max(1.0, abs(a))

    def test_relative_drops_length(self, small_dataset):
        curve = convergence_curve(small_dataset, max_iter=6, random_state=0)
        assert len(curve.relative_drops()) == curve.n_iter - 1

    def test_sparkline(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▁▁"
        line = sparkline([3.0, 2.0, 1.0])
        assert len(line) == 3
        assert line[0] == "█" and line[-1] == "▁"


class TestTablesEdgeCases:
    def _fake_scores(self, method, dataset, acc):
        from repro.evaluation.runner import AggregatedScore, MethodScores

        return MethodScores(
            method=method,
            dataset=dataset,
            scores={"acc": AggregatedScore.from_values([acc])},
            seconds=AggregatedScore.from_values([0.1]),
            n_runs=1,
        )

    def test_missing_method_rendered_as_dash(self):
        results = {
            "ds1": {"A": self._fake_scores("A", "ds1", 0.9)},
            "ds2": {
                "A": self._fake_scores("A", "ds2", 0.8),
                "B": self._fake_scores("B", "ds2", 0.7),
            },
        }
        table = format_metric_table(results, "acc")
        assert "-" in table  # B has no ds1 entry

    def test_empty_results(self):
        assert "(no results)" in format_metric_table({}, "acc")

    def test_rank_ties_averaged_by_order(self):
        results = {
            "ds": {
                "A": self._fake_scores("A", "ds", 0.9),
                "B": self._fake_scores("B", "ds", 0.5),
            }
        }
        ranks = summarize_ranks(results, "acc")
        assert ranks["A"] == 1.0 and ranks["B"] == 2.0
