"""Tests for repro.graph.distance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ValidationError
from repro.graph.distance import pairwise_cosine_distances, pairwise_sq_euclidean

finite_matrix = arrays(
    np.float64,
    st.tuples(st.integers(2, 8), st.integers(1, 5)),
    elements=st.floats(-50, 50, allow_nan=False),
)


class TestSqEuclidean:
    def test_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(7, 3))
        d = pairwise_sq_euclidean(x)
        brute = np.array(
            [[np.sum((a - b) ** 2) for b in x] for a in x]
        )
        np.testing.assert_allclose(d, brute, atol=1e-10)

    def test_cross_distances(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 2))
        y = rng.normal(size=(6, 2))
        d = pairwise_sq_euclidean(x, y)
        assert d.shape == (4, 6)
        assert d[1, 2] == pytest.approx(np.sum((x[1] - y[2]) ** 2))

    def test_dimension_mismatch(self):
        with pytest.raises(ValidationError, match="feature dimension"):
            pairwise_sq_euclidean(np.zeros((3, 2)), np.zeros((3, 4)))

    @settings(deadline=None, max_examples=30)
    @given(finite_matrix)
    def test_properties(self, x):
        d = pairwise_sq_euclidean(x)
        assert np.all(d >= 0)
        np.testing.assert_allclose(d, d.T, atol=1e-8)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-8)


class TestCosine:
    def test_identical_rows_zero(self):
        x = np.array([[1.0, 2.0], [2.0, 4.0]])
        d = pairwise_cosine_distances(x)
        assert d[0, 1] == pytest.approx(0.0, abs=1e-10)

    def test_opposite_rows_two(self):
        x = np.array([[1.0, 0.0], [-1.0, 0.0]])
        assert pairwise_cosine_distances(x)[0, 1] == pytest.approx(2.0)

    def test_orthogonal_rows_one(self):
        x = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert pairwise_cosine_distances(x)[0, 1] == pytest.approx(1.0)

    def test_zero_row_maximally_distant(self):
        x = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert pairwise_cosine_distances(x)[0, 1] == pytest.approx(1.0)

    def test_zero_row_distant_from_itself(self):
        # A zero row has no direction, so it must NOT sit at distance 0
        # from itself: d[i, i] = 1.0 for dead rows, matching their
        # distance to every other row.
        x = np.array([[0.0, 0.0], [1.0, 1.0], [0.0, 0.0]])
        d = pairwise_cosine_distances(x)
        assert d[0, 0] == pytest.approx(1.0)
        assert d[2, 2] == pytest.approx(1.0)
        assert d[1, 1] == pytest.approx(0.0)
        assert d[0, 2] == pytest.approx(1.0)

    def test_nonzero_diagonal_stays_zero(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(9, 4))
        d = pairwise_cosine_distances(x)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-12)

    def test_zero_row_diagonal_cross_distances(self):
        # The cross-distance (x, y) path must agree with the symmetric
        # path about dead rows: a zero query row is distance 1 even to a
        # zero reference row.
        x = np.array([[0.0, 0.0], [1.0, 0.0]])
        d = pairwise_cosine_distances(x, x)
        assert d[0, 0] == pytest.approx(1.0)
        assert d[1, 1] == pytest.approx(0.0)

    @settings(deadline=None, max_examples=30)
    @given(finite_matrix)
    def test_range_and_symmetry(self, x):
        d = pairwise_cosine_distances(x)
        assert np.all(d >= -1e-12) and np.all(d <= 2.0 + 1e-12)
        np.testing.assert_allclose(d, d.T, atol=1e-8)
