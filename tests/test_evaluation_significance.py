"""Tests for repro.evaluation.significance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.significance import (
    compare_methods,
    paired_t_test,
    sign_test,
)
from repro.exceptions import ValidationError


class TestPairedTTest:
    def test_identical_samples_not_significant(self):
        a = [0.8, 0.7, 0.9, 0.85]
        result = paired_t_test(a, a)
        assert result.p_value == 1.0
        assert not result.significant()

    def test_clear_difference_significant(self):
        rng = np.random.default_rng(0)
        b = rng.normal(0.5, 0.01, size=20)
        a = b + 0.2
        result = paired_t_test(a, b)
        assert result.significant(0.001)
        assert result.mean_difference == pytest.approx(0.2, abs=1e-9)

    def test_constant_nonzero_difference(self):
        # Exactly representable values so the differences are identical.
        a = [1.0, 0.75, 0.5]
        b = [0.75, 0.5, 0.25]
        result = paired_t_test(a, b)
        assert result.p_value == 0.0
        assert result.significant()

    def test_matches_scipy(self):
        import scipy.stats

        rng = np.random.default_rng(1)
        a = rng.normal(0.6, 0.1, size=15)
        b = rng.normal(0.55, 0.1, size=15)
        mine = paired_t_test(a, b)
        ref = scipy.stats.ttest_rel(a, b)
        assert mine.statistic == pytest.approx(ref.statistic, rel=1e-9)
        assert mine.p_value == pytest.approx(ref.pvalue, rel=1e-7)

    def test_symmetry(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=10)
        b = rng.normal(size=10)
        ab = paired_t_test(a, b)
        ba = paired_t_test(b, a)
        assert ab.p_value == pytest.approx(ba.p_value, abs=1e-12)
        assert ab.statistic == pytest.approx(-ba.statistic, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValidationError):
            paired_t_test([1.0], [1.0])
        with pytest.raises(ValidationError):
            paired_t_test([1.0, 2.0], [1.0])
        with pytest.raises(ValidationError):
            paired_t_test([np.nan, 1.0], [0.0, 1.0])

    @settings(deadline=None, max_examples=30)
    @given(st.lists(st.floats(-1, 1), min_size=3, max_size=20), st.integers(0, 100))
    def test_property_p_in_unit_interval(self, a, seed):
        a = np.array(a)
        b = a + np.random.default_rng(seed).normal(scale=0.1, size=a.size)
        result = paired_t_test(a, b)
        assert 0.0 <= result.p_value <= 1.0


class TestSignTest:
    def test_all_ties_uninformative(self):
        result = sign_test([0.5, 0.5], [0.5, 0.5])
        assert result.p_value == 1.0
        assert result.n == 0

    def test_one_sided_dominance(self):
        a = np.linspace(0.8, 0.9, 12)
        b = a - 0.05
        result = sign_test(a, b)
        assert result.statistic == 12
        assert result.p_value == pytest.approx(2 * 0.5**12)
        assert result.significant()

    def test_balanced_not_significant(self):
        a = [1.0, 0.0, 1.0, 0.0]
        b = [0.0, 1.0, 0.0, 1.0]
        result = sign_test(a, b)
        assert result.p_value > 0.5

    def test_matches_binomtest(self):
        import scipy.stats

        a = np.array([0.9, 0.8, 0.85, 0.7, 0.95, 0.6, 0.77])
        b = np.array([0.85, 0.82, 0.8, 0.72, 0.9, 0.55, 0.7])
        mine = sign_test(a, b)
        positives = int(np.sum(a - b > 0))
        ref = scipy.stats.binomtest(positives, n=7, p=0.5).pvalue
        assert mine.p_value == pytest.approx(ref, rel=1e-9)


class TestCompareMethods:
    def test_over_runner_results(self, small_dataset):
        from repro.evaluation.runner import run_experiment

        results = run_experiment(
            small_dataset, methods=["KernelAddSC", "ConcatSC"], n_runs=3
        )
        outcome = compare_methods(
            results["KernelAddSC"], results["ConcatSC"], metric="acc"
        )
        assert 0.0 <= outcome.p_value <= 1.0
        assert outcome.n == 3

    def test_missing_metric(self, small_dataset):
        from repro.evaluation.runner import run_experiment

        results = run_experiment(
            small_dataset, methods=["ConcatSC"], n_runs=2, metrics=("acc",)
        )
        with pytest.raises(ValidationError, match="missing"):
            compare_methods(
                results["ConcatSC"], results["ConcatSC"], metric="nmi"
            )
