"""Tests for the solver instrumentation layer (repro.observability)."""

import io
import json
import time
import warnings

import numpy as np
import pytest

from repro.cli import main
from repro.core.model import UnifiedMVSC
from repro.core.anchor_model import AnchorMVSC
from repro.core.sparse_model import SparseMVSC
from repro.datasets.synth import make_multiview_blobs
from repro.exceptions import ConvergenceWarning, MonotonicityWarning
from repro.observability import (
    IterationEvent,
    JsonlSink,
    LoggingSink,
    Trace,
    TraceRecorder,
    current_request_id,
    current_trace,
    last_trace,
    profile_span,
    read_jsonl,
    span,
    use_request,
    use_trace,
)
from repro.observability.trace import NOOP_SPAN, metric_inc, metric_observe


class TestSpanAPI:
    def test_nesting_records_depth_and_parent(self):
        with use_trace(Trace("t")) as trace:
            with span("outer"):
                with span("inner", k=3):
                    pass
                with span("inner2"):
                    pass
        names = [s.name for s in trace.spans]
        assert names == ["inner", "inner2", "outer"]  # completion order
        by_name = {s.name: s for s in trace.spans}
        assert by_name["outer"].depth == 0 and by_name["outer"].parent is None
        assert by_name["inner"].depth == 1 and by_name["inner"].parent == "outer"
        assert by_name["inner"].attributes == {"k": 3}
        assert all(s.duration >= 0.0 for s in trace.spans)

    def test_set_attaches_attributes_mid_span(self):
        with use_trace(Trace("t")) as trace:
            with span("work") as sp:
                sp.set(n_iter=7)
        assert trace.spans[0].attributes["n_iter"] == 7

    def test_exception_unwinds_span_stack(self):
        trace = Trace("t")
        with pytest.raises(RuntimeError):
            with use_trace(trace):
                with span("outer"):
                    raise RuntimeError("boom")
        assert current_trace() is None
        assert [s.name for s in trace.spans] == ["outer"]
        assert trace._stack == []

    def test_phase_stats_totals(self):
        with use_trace(Trace("t")) as trace:
            for _ in range(3):
                with span("phase"):
                    pass
        count, total = trace.phase_stats()["phase"]
        assert count == 3
        assert trace.phase_totals()["phase"] == pytest.approx(total)


class TestDisabledMode:
    def test_off_by_default(self):
        assert current_trace() is None

    def test_span_is_shared_noop(self):
        assert span("anything") is NOOP_SPAN
        assert span("other", k=1) is NOOP_SPAN
        with span("nested") as sp:
            assert sp.set(x=1) is sp

    def test_profile_span_shares_the_same_noop(self):
        # The profiling wrapper must not add a second dormant object:
        # with no session and no trace it is the identical singleton.
        assert profile_span("anything") is NOOP_SPAN
        assert profile_span("other", k=1) is span("other", k=1)

    def test_metrics_helpers_are_noops(self):
        metric_inc("some.counter")
        metric_observe("some.hist", 3.0)  # nothing raised, nothing recorded

    @pytest.mark.filterwarnings("ignore::repro.exceptions.ConvergenceWarning")
    def test_no_events_recorded_and_negligible_overhead(self):
        ds = make_multiview_blobs(60, 3, view_dims=(6, 8), random_state=0)
        recorder = TraceRecorder()
        with use_trace(Trace("t", sinks=[recorder])):
            UnifiedMVSC(3, max_iter=3, n_restarts=2, random_state=0).fit(
                ds.views
            )
        assert recorder.events  # enabled mode records
        before = len(recorder.events)
        UnifiedMVSC(3, max_iter=3, n_restarts=2, random_state=0).fit(ds.views)
        assert len(recorder.events) == before  # disabled mode records nothing
        # The no-op fast path is a single contextvar lookup.
        start = time.perf_counter()
        for _ in range(20000):
            with span("hot"):
                pass
        assert time.perf_counter() - start < 1.0


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        event = IterationEvent(
            solver="UnifiedMVSC",
            iteration=1,
            objective=1.5,
            objective_pre_reweight=1.6,
            rel_change=0.1,
            block_seconds={"f_step": 0.01},
            gpi_iterations=4,
            label_moves=2,
            view_weights=(0.4, 0.6),
        )
        with use_trace(Trace("t", sinks=[JsonlSink(path)])) as trace:
            with span("phase", k=2):
                pass
            trace.emit(event)
        records = read_jsonl(path)
        kinds = {r["type"] for r in records}
        assert kinds == {"span", "iteration", "trace_end"}
        span_rec = next(r for r in records if r["type"] == "span")
        assert span_rec["name"] == "phase"
        assert span_rec["attributes"] == {"k": 2}
        iter_rec = next(r for r in records if r["type"] == "iteration")
        assert IterationEvent.from_dict(iter_rec) == event
        # The closing trace_end line makes the file self-describing.
        tail = records[-1]
        assert tail["type"] == "trace_end"
        assert tail["trace_id"] == trace.trace_id
        assert tail["n_spans"] == 1 and tail["n_events"] == 1
        assert span_rec["trace_id"] == trace.trace_id
        assert set(tail["metrics"]) == {"counters", "gauges", "histograms"}

    def test_stream_destination_left_open(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        sink.on_fit_start({"solver": "X"})
        sink.close()
        assert json.loads(stream.getvalue()) == {
            "type": "fit_start",
            "solver": "X",
        }


class TestIterationEvents:
    @pytest.fixture(scope="class")
    def fitted(self):
        ds = make_multiview_blobs(90, 3, view_dims=(10, 14), random_state=3)
        recorder = TraceRecorder()
        model = UnifiedMVSC(
            3, max_iter=10, n_restarts=3, random_state=0, callbacks=[recorder]
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            result = model.fit(ds.views)
        return result, recorder

    def test_one_event_per_iteration(self, fitted):
        result, recorder = fitted
        assert len(recorder.events) == result.n_iter
        assert [e.iteration for e in recorder.events] == list(
            range(1, result.n_iter + 1)
        )

    def test_events_match_history_and_result(self, fitted):
        result, recorder = fitted
        assert [e.objective for e in recorder.events] == pytest.approx(
            result.objective_history
        )
        assert recorder.events[0].rel_change is None
        assert recorder.events[-1].view_weights == pytest.approx(
            tuple(result.view_weights)
        )

    def test_block_timings_present_and_positive(self, fitted):
        _, recorder = fitted
        for event in recorder.events:
            for key in ("f_step", "r_step", "y_step", "w_step", "objective"):
                assert event.block_seconds[key] >= 0.0
            assert event.gpi_iterations >= 1  # lam > 0 -> GPI ran
            assert event.label_moves >= 0

    def test_pre_reweight_objective_descends(self, fitted):
        result, recorder = fitted
        # Block descent: pre-reweighting objective never exceeds the
        # previous recorded value (up to tolerance).
        for prev, event in zip(result.objective_history, recorder.events[1:]):
            assert event.objective_pre_reweight <= prev + 1e-6 * max(
                1.0, abs(prev)
            )

    def test_diagnostics_rides_on_result(self, fitted):
        result, recorder = fitted
        assert len(result.diagnostics) == result.n_iter
        assert result.diagnostics.objectives() == pytest.approx(
            result.objective_history
        )
        phases = result.diagnostics.phase_seconds()
        assert set(phases) >= {"f_step", "r_step", "y_step", "w_step"}
        assert result.diagnostics.total_seconds() > 0.0
        assert result.diagnostics.to_dicts()[0]["iteration"] == 1

    def test_fit_start_and_end_hooks(self, fitted):
        result, recorder = fitted
        kinds = [info["type"] for info in recorder.fit_infos]
        assert kinds == ["fit_start", "fit_end"]
        assert recorder.fit_infos[0]["solver"] == "UnifiedMVSC"
        assert recorder.fit_infos[1]["n_iter"] == result.n_iter

    def test_scalable_variants_emit_events(self):
        ds = make_multiview_blobs(80, 3, view_dims=(8, 10), random_state=1)
        for cls in (AnchorMVSC, SparseMVSC):
            recorder = TraceRecorder()
            model = cls(
                3, max_iter=3, n_restarts=2, random_state=0,
                callbacks=[recorder],
            )
            labels = model.fit_predict(ds.views)
            assert labels.shape == (80,)
            assert recorder.events
            assert recorder.events[0].solver == cls.__name__
            assert set(recorder.events[0].block_seconds) >= {
                "f_step", "y_step", "w_step",
            }


class TestZeroImpact:
    def test_results_bit_identical_with_tracing_on_vs_off(self):
        ds = make_multiview_blobs(80, 3, view_dims=(8, 12), random_state=5)

        def fit():
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ConvergenceWarning)
                return UnifiedMVSC(
                    3, max_iter=5, n_restarts=3, random_state=42
                ).fit(ds.views)

        plain = fit()
        with use_trace(Trace("t", sinks=[TraceRecorder()])):
            traced = fit()
        assert np.array_equal(plain.labels, traced.labels)
        assert plain.objective_history == traced.objective_history
        assert np.array_equal(plain.view_weights, traced.view_weights)
        assert np.array_equal(plain.embedding, traced.embedding)

    def test_trace_collects_solver_spans_and_metrics(self):
        ds = make_multiview_blobs(60, 3, view_dims=(6, 8), random_state=2)
        with use_trace(Trace("t")) as trace:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ConvergenceWarning)
                UnifiedMVSC(3, max_iter=3, n_restarts=2, random_state=0).fit(
                    ds.views
                )
        totals = trace.phase_totals()
        assert set(totals) >= {
            "graph_build", "view_laplacians", "initialize",
            "f_step", "r_step", "y_step", "w_step", "gpi", "eigsh",
        }
        gpi_hist = trace.metrics.histograms["gpi.inner_iterations"]
        assert gpi_hist.count >= 1 and gpi_hist.min >= 1
        assert trace.metrics.counters["eigsh.calls"].value >= 1
        assert trace.metrics.counters["y_step.moves"].value >= 0


class TestWarningsAndReprs:
    def test_monotonicity_warning_is_convergence_family(self):
        assert issubclass(MonotonicityWarning, ConvergenceWarning)
        assert issubclass(MonotonicityWarning, UserWarning)

    def test_convergence_warning_carries_diagnostics(self):
        ds = make_multiview_blobs(70, 3, view_dims=(8, 10), random_state=4)
        with pytest.warns(
            ConvergenceWarning, match="last relative objective change"
        ):
            UnifiedMVSC(3, max_iter=1, n_restarts=2, random_state=0).fit(
                ds.views
            )

    def test_model_repr(self):
        text = repr(UnifiedMVSC(4, lam=0.5, random_state=0))
        assert text.startswith("UnifiedMVSC(")
        assert "n_clusters=4" in text and "lam=0.5" in text
        assert "AnchorMVSC(" in repr(AnchorMVSC(3))
        assert "SparseMVSC(" in repr(SparseMVSC(3))

    def test_result_repr(self):
        ds = make_multiview_blobs(60, 3, view_dims=(6, 8), random_state=6)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            result = UnifiedMVSC(
                3, max_iter=3, n_restarts=2, random_state=0
            ).fit(ds.views)
        text = repr(result)
        assert "UMSCResult(" in text
        assert "n_iter=" in text and "converged=" in text
        assert "objective=" in text and "view_weights=[" in text
        assert "array(" not in text  # no raw ndarray dumps


class TestLoggingSink:
    def test_verbose_lines_on_stream(self):
        stream = io.StringIO()
        sink = LoggingSink(stream=stream)
        try:
            sink.on_fit_start({"solver": "UnifiedMVSC", "n_samples": 10})
            sink.on_iteration(
                IterationEvent(
                    solver="UnifiedMVSC",
                    iteration=1,
                    objective=2.0,
                    block_seconds={"f_step": 0.001},
                    gpi_iterations=3,
                    label_moves=1,
                    view_weights=(0.5, 0.5),
                )
            )
            sink.on_fit_end({"solver": "UnifiedMVSC", "n_iter": 1})
        finally:
            sink.close()
        text = stream.getvalue()
        assert "fit start" in text
        assert "iter 1" in text and "obj=2.000000" in text
        assert "gpi=3" in text and "moves=1" in text
        assert "fit end" in text


class TestRunnerIntegration:
    def test_run_experiment_aggregates_phase_breakdown(self):
        from repro.datasets import load_benchmark
        from repro.evaluation.runner import run_experiment

        ds = load_benchmark("yale")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            results = run_experiment(
                ds, methods=["UMSC"], n_runs=2, metrics=("acc",)
            )
        phases = results["UMSC"].phase_seconds
        assert set(phases) >= {"f_step", "y_step", "w_step"}
        for agg in phases.values():
            assert len(agg.values) == 2
            assert agg.mean >= 0.0

    def test_grid_sweep_records_phase_seconds(self):
        from repro.evaluation.sweeps import grid_sweep

        ds = make_multiview_blobs(60, 3, view_dims=(6, 8), random_state=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            result = grid_sweep(
                ds,
                lambda random_state, lam: UnifiedMVSC(
                    3, lam=lam, max_iter=2, n_restarts=2,
                    random_state=random_state,
                ),
                {"lam": [0.5, 1.0]},
                metrics=("acc",),
            )
        for point in result.points:
            assert point.phase_seconds.get("f_step", 0.0) >= 0.0
            assert point.phase_seconds  # breakdown recorded


class TestCLI:
    def test_run_with_trace_and_verbose(self, tmp_path, capsys):
        path = tmp_path / "out.jsonl"
        out = io.StringIO()
        code = main(
            [
                "run", "--dataset", "yale", "--method", "UMSC",
                "--trace", str(path), "--verbose", "--profile",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "profile (time per phase):" in text
        assert "trace:" in text and "iteration events" in text
        records = read_jsonl(path)
        iterations = [r for r in records if r["type"] == "iteration"]
        spans = [r for r in records if r["type"] == "span"]
        assert iterations and spans
        # One event per outer iteration, per-block timings summing to a
        # plausible fraction of the total fit time.
        event = IterationEvent.from_dict(iterations[-1])
        assert event.solver == "UnifiedMVSC"
        assert sum(event.block_seconds.values()) > 0.0
        assert len(event.view_weights) > 0
        err = capsys.readouterr().err
        assert "iter 1" in err  # --verbose logged to stderr

    def test_run_without_flags_writes_no_trace(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["run", "--dataset", "yale", "--method", "KernelAddSC"], out=out
        )
        assert code == 0
        assert "trace:" not in out.getvalue()
        assert list(tmp_path.iterdir()) == []

    def test_trace_events_cover_every_iteration(self, tmp_path):
        from repro.datasets import load_benchmark
        from repro.evaluation.registry import default_method_registry
        from repro.evaluation.runner import run_method_once

        path = tmp_path / "out.jsonl"
        out = io.StringIO()
        assert (
            main(
                [
                    "run", "--dataset", "yale", "--method", "UMSC",
                    "--trace", str(path), "--seed", "3",
                ],
                out=out,
            )
            == 0
        )
        iterations = [
            r for r in read_jsonl(path) if r["type"] == "iteration"
        ]
        # Re-run the same configuration in-process to learn n_iter.
        ds = load_benchmark("yale")
        spec = default_method_registry()["UMSC"]
        recorder = TraceRecorder()
        with use_trace(Trace("t", sinks=[recorder])):
            run_method_once(spec, ds, 3, metrics=("acc",))
        assert len(iterations) == len(recorder.events)
        assert len(iterations) >= 1


class TestSpanIdentity:
    def test_last_trace_round_trips_identity_fields(self, tmp_path):
        path = tmp_path / "id.jsonl"
        with use_trace(Trace("ids", sinks=[JsonlSink(path)])):
            with span("outer"):
                with span("inner"):
                    pass
        trace = last_trace()
        by_name = {s.name: s for s in trace.spans}
        outer, inner = by_name["outer"], by_name["inner"]
        # Every span carries the full correlation identity.
        for s in (outer, inner):
            assert s.trace_id == trace.trace_id
            assert len(s.span_id) == 16
            assert s.timestamp > 1e9  # wall clock, not perf_counter
            assert s.thread
            assert s.request_id is None
            assert s.links == []
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.span_id != inner.span_id
        # The JSONL sink round-trips the same fields verbatim.
        records = {
            r["name"]: r for r in read_jsonl(path) if r["type"] == "span"
        }
        for s in (outer, inner):
            rec = records[s.name]
            assert rec["trace_id"] == s.trace_id
            assert rec["span_id"] == s.span_id
            assert rec.get("parent_id") == s.parent_id
            assert rec["timestamp"] == pytest.approx(s.timestamp)

    def test_use_request_stamps_spans_within_scope(self):
        assert current_request_id() is None
        with use_trace(Trace("t")) as trace:
            with use_request("req-1"):
                assert current_request_id() == "req-1"
                with span("inside"):
                    pass
            with span("outside"):
                pass
        assert current_request_id() is None
        by_name = {s.name: s for s in trace.spans}
        assert by_name["inside"].request_id == "req-1"
        assert by_name["outside"].request_id is None
