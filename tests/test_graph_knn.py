"""Tests for repro.graph.knn."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph.knn import kneighbors


def _line_distances(n):
    """Points on a line at integer positions: distances are |i - j|."""
    pos = np.arange(n, dtype=float)[:, None]
    return np.abs(pos - pos.T)


class TestKNeighbors:
    def test_line_graph_neighbors(self):
        idx, dist = kneighbors(_line_distances(5), 2)
        # Point 0's nearest two neighbors are 1 and 2.
        np.testing.assert_array_equal(sorted(idx[0]), [1, 2])
        np.testing.assert_array_equal(dist[0], [1.0, 2.0])
        # Interior point 2's neighbors are 1 and 3 (distance 1 each).
        assert set(idx[2]) == {1, 3}

    def test_self_excluded_by_default(self):
        idx, _ = kneighbors(_line_distances(6), 3)
        for i in range(6):
            assert i not in idx[i]

    def test_include_self(self):
        idx, dist = kneighbors(_line_distances(4), 1, include_self=True)
        np.testing.assert_array_equal(idx[:, 0], np.arange(4))
        np.testing.assert_array_equal(dist[:, 0], 0.0)

    def test_sorted_by_distance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(20, 3))
        from repro.graph.distance import pairwise_sq_euclidean

        d = np.sqrt(pairwise_sq_euclidean(x))
        _, dist = kneighbors(d, 7)
        assert np.all(np.diff(dist, axis=1) >= -1e-12)

    def test_inf_entries_allowed(self):
        d = _line_distances(4)
        d[0, 3] = d[3, 0] = np.inf
        idx, _ = kneighbors(d, 2)
        assert 3 not in idx[0][:2] or d[0, idx[0][-1]] < np.inf

    def test_k_out_of_range(self):
        with pytest.raises(ValidationError):
            kneighbors(_line_distances(4), 4)
        with pytest.raises(ValidationError):
            kneighbors(_line_distances(4), 0)

    def test_nan_rejected(self):
        d = _line_distances(3)
        d[0, 1] = np.nan
        with pytest.raises(ValidationError, match="NaN"):
            kneighbors(d, 1)
