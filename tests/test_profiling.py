"""Tests for the opt-in profiling hooks (repro.observability.profiling)."""

import pytest

from repro.exceptions import ValidationError
from repro.observability import (
    ProfilingSession,
    Trace,
    current_profiling,
    profile_span,
    use_profiling,
    use_trace,
)
from repro.observability.trace import NOOP_SPAN


def _burn():
    return sum(i * i for i in range(5000))


class TestDisabledMode:
    def test_profile_span_is_shared_noop_when_fully_disabled(self):
        # No session AND no trace: the same singleton span() returns, so
        # the dormant cost stays one contextvar lookup on top of span's.
        assert profile_span("eigsh") is NOOP_SPAN
        assert profile_span("gpi", n=5) is NOOP_SPAN

    def test_profile_span_is_plain_live_span_with_trace_only(self):
        with use_trace(Trace("t")) as trace:
            with profile_span("hot") as sp:
                sp.set(k=1)
        assert [s.name for s in trace.spans] == ["hot"]
        assert "profile" not in trace.spans[0].attributes

    def test_no_session_by_default(self):
        assert current_profiling() is None


class TestProfilingSession:
    def test_records_hotspots_per_site(self):
        with use_profiling(limit=8) as session:
            with profile_span("site.a"):
                _burn()
            with profile_span("site.b"):
                _burn()
        assert session.sites() == ["site.a", "site.b"]
        rows = session.hotspots("site.a")
        assert rows and all(
            set(r) == {"function", "calls", "tottime", "cumtime"}
            for r in rows
        )
        # Merged view covers both sites; top caps the row count.
        assert session.hotspots()
        assert len(session.hotspots(top=1)) == 1

    def test_repeated_site_executions_accumulate(self):
        with use_profiling() as session:
            for _ in range(3):
                with profile_span("site"):
                    _burn()
        row = next(
            r for r in session.hotspots("site") if "_burn" in r["function"]
        )
        assert row["calls"] == 3

    def test_span_attributes_carry_profile_rows(self):
        with use_trace(Trace("t")) as trace:
            with use_profiling():
                with profile_span("hot"):
                    _burn()
        profile = trace.spans[0].attributes["profile"]
        assert profile and profile[0]["cumtime"] >= 0.0
        assert any("_burn" in r["function"] for r in profile)

    def test_nested_profile_spans_profile_outermost_only(self):
        # CPython allows one active profiler; the inner block degrades
        # to a plain span instead of raising.
        with use_trace(Trace("t")) as trace:
            with use_profiling() as session:
                with profile_span("outer"):
                    with profile_span("inner"):
                        _burn()
        assert session.sites() == ["outer"]
        by_name = {s.name: s for s in trace.spans}
        assert "profile" in by_name["outer"].attributes
        assert "profile" not in by_name["inner"].attributes

    def test_context_restored_and_validation(self):
        session = ProfilingSession()
        with use_profiling(session) as active:
            assert active is session
            assert current_profiling() is session
        assert current_profiling() is None
        with pytest.raises(ValidationError, match="limit must be >= 1"):
            ProfilingSession(limit=0)

    def test_exception_disables_profiler(self):
        session = ProfilingSession()
        with pytest.raises(RuntimeError):
            with use_profiling(session):
                with profile_span("boom"):
                    raise RuntimeError("boom")
        assert session.sites() == ["boom"]  # capture still recorded
        # A later block can profile again (the active flag was reset).
        with use_profiling(session):
            with profile_span("after"):
                _burn()
        assert "after" in session.sites()


class TestInstrumentedKernels:
    def test_fit_profiles_designated_hot_spans(self):
        import warnings

        from repro.core.model import UnifiedMVSC
        from repro.datasets.synth import make_multiview_blobs
        from repro.exceptions import ConvergenceWarning

        ds = make_multiview_blobs(60, 3, view_dims=(6, 8), random_state=0)
        with use_profiling() as session:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ConvergenceWarning)
                UnifiedMVSC(3, max_iter=2, n_restarts=2, random_state=0).fit(
                    ds.views
                )
        assert {"eigsh", "gpi", "view_affinity"} <= set(session.sites())

    def test_bench_report_carries_hotspots(self):
        from repro.bench import run_benches

        report = run_benches(["graph_build"], quick=True, repeats=1)
        entry = report["benches"]["graph_build"]
        assert "knn_affinity" in entry["hotspots"]
        assert entry["hotspots"]["knn_affinity"][0]["cumtime"] >= 0.0
        without = run_benches(
            ["graph_build"], quick=True, repeats=1, profile=False
        )
        assert "hotspots" not in without["benches"]["graph_build"]
