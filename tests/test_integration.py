"""Integration tests: full pipelines across modules.

These exercise the same end-to-end paths the benchmarks use, on small
inputs: benchmark generation -> graphs -> every method -> metrics ->
tables, plus the public top-level API surface.
"""

import numpy as np
import pytest

import repro
from repro import (
    TwoStageMVSC,
    UnifiedMVSC,
    evaluate_clustering,
    load_benchmark,
    make_multiview_blobs,
    run_experiment,
)
from repro.evaluation.tables import format_metric_table


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestEndToEndPipeline:
    def test_benchmark_to_clustering(self):
        ds = load_benchmark("yale")
        result = UnifiedMVSC(ds.n_clusters, random_state=0).fit(ds.views)
        scores = evaluate_clustering(ds.labels, result.labels)
        # Structured data: far above the random-assignment baseline.
        assert scores["acc"] > 2.0 / ds.n_clusters
        assert scores["nmi"] > 0.2

    def test_multiview_beats_worst_view(self, medium_dataset):
        from repro.baselines import all_single_view_labels

        c = medium_dataset.n_clusters
        per_view = all_single_view_labels(
            medium_dataset.views, c, random_state=0
        )
        worst = min(
            evaluate_clustering(medium_dataset.labels, labels)["acc"]
            for labels in per_view
        )
        result = UnifiedMVSC(c, random_state=0).fit(medium_dataset.views)
        fused = evaluate_clustering(medium_dataset.labels, result.labels)["acc"]
        assert fused >= worst - 0.05

    def test_experiment_to_table(self, small_dataset):
        results = run_experiment(
            small_dataset,
            methods=["SC_best", "KernelAddSC", "UMSC"],
            n_runs=2,
        )
        table = format_metric_table({small_dataset.name: results}, "acc")
        assert "UMSC" in table and "SC_best" in table

    def test_one_stage_vs_two_stage_same_pipeline(self, small_dataset):
        one = UnifiedMVSC(3, random_state=0).fit(small_dataset.views).labels
        two = TwoStageMVSC(3, random_state=0).fit_predict(small_dataset.views)
        acc_one = evaluate_clustering(small_dataset.labels, one)["acc"]
        acc_two = evaluate_clustering(small_dataset.labels, two)["acc"]
        # On the easy fixture both should be essentially perfect.
        assert acc_one > 0.95 and acc_two > 0.95

    def test_reproducible_full_path(self):
        ds = make_multiview_blobs(100, 3, view_dims=(8, 12), random_state=4)
        a = UnifiedMVSC(3, random_state=9).fit(ds.views)
        b = UnifiedMVSC(3, random_state=9).fit(ds.views)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_allclose(a.view_weights, b.view_weights)
        assert a.objective_history == b.objective_history


class TestCrossMetricConsistency:
    def test_perfect_clustering_all_metrics_one(self, small_dataset):
        scores = evaluate_clustering(
            small_dataset.labels,
            small_dataset.labels,
            metrics=("acc", "nmi", "purity", "ari", "fscore"),
        )
        for name, value in scores.items():
            assert value == pytest.approx(1.0), name

    def test_purity_upper_bounds_acc(self, medium_dataset):
        result = UnifiedMVSC(4, random_state=1).fit(medium_dataset.views)
        scores = evaluate_clustering(
            medium_dataset.labels, result.labels, metrics=("acc", "purity")
        )
        assert scores["purity"] >= scores["acc"] - 1e-12
