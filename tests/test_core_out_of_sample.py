"""Tests for repro.core.out_of_sample (label propagation)."""

import numpy as np
import pytest

from repro.core import UnifiedMVSC
from repro.core.out_of_sample import propagate_labels
from repro.datasets import make_multiview_blobs
from repro.exceptions import ValidationError
from repro.metrics import clustering_accuracy


def _split(ds, train_fraction=0.8, seed=0):
    rng = np.random.default_rng(seed)
    n = ds.n_samples
    perm = rng.permutation(n)
    cut = int(train_fraction * n)
    train_idx, new_idx = perm[:cut], perm[cut:]
    train_views = [v[train_idx] for v in ds.views]
    new_views = [v[new_idx] for v in ds.views]
    return train_views, ds.labels[train_idx], new_views, ds.labels[new_idx]


class TestPropagateLabels:
    def test_simple_two_blobs(self):
        train = [np.vstack([np.zeros((5, 2)), np.ones((5, 2)) * 9])]
        labels = np.repeat([0, 1], 5)
        new = [np.array([[0.2, -0.1], [9.3, 8.8]])]
        out = propagate_labels(train, labels, new)
        np.testing.assert_array_equal(out, [0, 1])

    def test_end_to_end_with_umsc(self):
        ds = make_multiview_blobs(
            200,
            3,
            view_dims=(10, 14),
            view_noise=(0.15, 0.3),
            separation=6.0,
            random_state=5,
        )
        train_views, _, new_views, new_truth = _split(ds)
        result = UnifiedMVSC(3, random_state=0).fit(train_views)
        predicted = propagate_labels(
            train_views,
            result.labels,
            new_views,
            view_weights=result.view_weights,
        )
        # Map cluster ids to truth via the train assignment quality:
        # accuracy on held-out points should be far above chance.
        assert clustering_accuracy(new_truth, predicted) > 0.8

    def test_weights_emphasize_informative_view(self):
        rng = np.random.default_rng(1)
        informative = np.vstack([np.zeros((10, 2)), np.ones((10, 2)) * 9])
        garbage = rng.normal(size=(20, 2)) * 100
        labels = np.repeat([0, 1], 10)
        new_inf = np.array([[0.1, 0.0], [9.0, 9.1]])
        new_garbage = rng.normal(size=(2, 2)) * 100
        # All weight on the informative view -> correct assignment.
        out = propagate_labels(
            [informative, garbage],
            labels,
            [new_inf, new_garbage],
            view_weights=[1.0, 0.0],
        )
        np.testing.assert_array_equal(out, [0, 1])

    def test_validation(self):
        train = [np.zeros((4, 2))]
        labels = [0, 0, 1, 1]
        with pytest.raises(ValidationError, match="views"):
            propagate_labels(train, labels, [np.zeros((2, 2)), np.zeros((2, 2))])
        with pytest.raises(ValidationError, match="dim"):
            propagate_labels(train, labels, [np.zeros((2, 3))])
        with pytest.raises(ValidationError, match="view_weights"):
            propagate_labels(
                train, labels, [np.zeros((2, 2))], view_weights=[1.0, 1.0]
            )
        with pytest.raises(ValidationError, match="n_clusters"):
            propagate_labels(
                train, labels, [np.zeros((2, 2))], n_clusters=1
            )

    def test_all_new_points_get_valid_labels(self):
        rng = np.random.default_rng(2)
        train = [rng.normal(size=(30, 4))]
        labels = rng.integers(0, 3, size=30)
        labels[:3] = [0, 1, 2]
        new = [rng.normal(size=(7, 4))]
        out = propagate_labels(train, labels, new, n_clusters=3)
        assert out.shape == (7,)
        assert set(out.tolist()) <= {0, 1, 2}
