"""Tests for repro.graph.connectivity."""

import numpy as np

from repro.graph.connectivity import (
    connected_components,
    is_connected,
    isolated_vertices,
)


def _block_graph(sizes):
    """Disjoint cliques of the given sizes."""
    n = sum(sizes)
    w = np.zeros((n, n))
    start = 0
    for s in sizes:
        w[start : start + s, start : start + s] = 1.0
        start += s
    np.fill_diagonal(w, 0.0)
    return w


class TestConnectedComponents:
    def test_single_clique(self):
        labels = connected_components(_block_graph([5]))
        assert set(labels) == {0}

    def test_three_components(self):
        labels = connected_components(_block_graph([3, 4, 2]))
        assert labels.max() + 1 == 3
        np.testing.assert_array_equal(labels[:3], 0)
        np.testing.assert_array_equal(labels[3:7], 1)
        np.testing.assert_array_equal(labels[7:], 2)

    def test_numbered_by_first_appearance(self):
        labels = connected_components(_block_graph([1, 1, 1]))
        np.testing.assert_array_equal(labels, [0, 1, 2])

    def test_bridge_merges_components(self):
        w = _block_graph([3, 3])
        w[0, 5] = w[5, 0] = 0.5
        assert is_connected(w)

    def test_tolerance_threshold(self):
        w = _block_graph([2, 2])
        w[0, 2] = w[2, 0] = 1e-6
        assert is_connected(w, tol=0.0)
        assert not is_connected(w, tol=1e-3)

    def test_isolated_vertices(self):
        w = np.zeros((4, 4))
        labels = connected_components(w)
        assert labels.max() + 1 == 4

    def test_directed_edges_treated_undirected(self):
        w = np.zeros((3, 3))
        w[0, 1] = 1.0  # asymmetric entry
        labels = connected_components(w)
        assert labels[0] == labels[1] != labels[2]


class TestIsolatedVertices:
    def test_none_isolated(self):
        assert isolated_vertices(_block_graph([4])).size == 0

    def test_all_isolated(self):
        np.testing.assert_array_equal(
            isolated_vertices(np.zeros((3, 3))), [0, 1, 2]
        )

    def test_detects_zeroed_vertex(self):
        w = _block_graph([5])
        w[2, :] = 0.0
        w[:, 2] = 0.0
        np.testing.assert_array_equal(isolated_vertices(w), [2])

    def test_diagonal_ignored(self):
        # A self-loop is not an incident edge: the vertex stays isolated.
        w = np.zeros((3, 3))
        w[0, 0] = 5.0
        w[1, 2] = w[2, 1] = 1.0
        np.testing.assert_array_equal(isolated_vertices(w), [0])

    def test_asymmetric_edge_counts(self):
        w = np.zeros((3, 3))
        w[0, 1] = 1.0  # edge in one direction only
        np.testing.assert_array_equal(isolated_vertices(w), [2])

    def test_tolerance_threshold(self):
        w = np.zeros((2, 2))
        w[0, 1] = w[1, 0] = 1e-6
        assert isolated_vertices(w, tol=0.0).size == 0
        np.testing.assert_array_equal(
            isolated_vertices(w, tol=1e-3), [0, 1]
        )

    def test_consistent_with_components(self):
        w = _block_graph([3, 1, 2])  # the singleton block is isolated
        iso = isolated_vertices(w)
        labels = connected_components(w)
        counts = np.bincount(labels)
        singletons = np.flatnonzero(counts[labels] == 1)
        np.testing.assert_array_equal(iso, singletons)
