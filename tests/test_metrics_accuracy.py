"""Tests for repro.metrics.accuracy (clustering ACC)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.accuracy import best_label_mapping, clustering_accuracy

label_vectors = st.lists(st.integers(0, 4), min_size=2, max_size=40)


class TestClusteringAccuracy:
    def test_perfect_after_permutation(self):
        assert clustering_accuracy([0, 0, 1, 1], [1, 1, 0, 0]) == 1.0

    def test_identity(self):
        assert clustering_accuracy([0, 1, 2], [0, 1, 2]) == 1.0

    def test_half_right(self):
        assert clustering_accuracy([0, 0, 1, 1], [0, 1, 0, 1]) == 0.5

    def test_all_one_cluster(self):
        # Best mapping credits the majority class.
        assert clustering_accuracy([0, 0, 0, 1], [0, 0, 0, 0]) == 0.75

    def test_more_clusters_than_classes(self):
        acc = clustering_accuracy([0, 0, 1, 1], [0, 1, 2, 3])
        assert acc == 0.5  # two of four samples can be matched

    def test_arbitrary_label_values(self):
        assert clustering_accuracy([10, 10, -3, -3], [7, 7, 99, 99]) == 1.0

    @settings(deadline=None, max_examples=50)
    @given(label_vectors)
    def test_property_permutation_invariance(self, labels):
        labels = np.array(labels)
        permuted = (labels + 1) % 5
        assert clustering_accuracy(labels, permuted) == 1.0

    @settings(deadline=None, max_examples=50)
    @given(label_vectors, st.integers(0, 100))
    def test_property_bounds_and_symmetry_of_perfection(self, labels, seed):
        labels = np.array(labels)
        rng = np.random.default_rng(seed)
        pred = rng.integers(0, 3, size=labels.size)
        acc = clustering_accuracy(labels, pred)
        assert 0.0 < acc <= 1.0 or acc == 0.0
        # ACC is at least the frequency of the largest class intersection
        # divided by n -- in particular at least 1/n.
        assert acc >= 1.0 / labels.size - 1e-12


class TestBestLabelMapping:
    def test_simple_permutation(self):
        mapping = best_label_mapping([0, 0, 1, 1], [1, 1, 0, 0])
        assert mapping == {1: 0, 0: 1}

    def test_mapping_is_injective(self):
        mapping = best_label_mapping([0, 0, 1, 1, 2, 2], [2, 2, 0, 0, 1, 1])
        assert len(set(mapping.values())) == len(mapping)

    def test_applying_mapping_achieves_acc(self):
        truth = np.array([0, 0, 1, 1, 2, 2, 2])
        pred = np.array([1, 1, 2, 0, 0, 0, 0])
        mapping = best_label_mapping(truth, pred)
        mapped = np.array([mapping.get(p, -1) for p in pred])
        acc = clustering_accuracy(truth, pred)
        assert np.mean(mapped == truth) == pytest.approx(acc)
