"""Tests for the scenario factory (:mod:`repro.datasets.scenarios`).

Three layers, mirroring the module's contracts:

* **Spec layer** — :class:`Scenario` validation, normalization, the
  confusion schedule, deterministic imbalance apportionment, and the
  ``to_dict``/``from_dict`` round-trip used by bench reports;
* **Property layer** — hypothesis tests over every knob: shape
  agreement, mask consistency and coverage, imbalance ratio within
  tolerance, dropout/shuffle effect sizes, and determinism (same seed
  ⇒ bit-identical, different seed ⇒ different content);
* **Golden layer** — blake2b content hashes of two small scenarios
  pinned against the exact bytes the factory produced when these tests
  were written (the :mod:`tests.test_backends` idiom).  A hash change
  means generation is no longer bit-reproducible — a breaking change
  for every downstream regression artifact, not a refactor detail.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets.scenarios import (
    MAX_MISSING_RATE,
    SCENARIOS,
    Scenario,
    available_scenarios,
    generate,
    get_scenario,
)
from repro.exceptions import ValidationError

scenario_settings = settings(
    deadline=None,
    max_examples=12,
    suppress_health_check=[HealthCheck.too_slow],
)


def _tiny(**overrides) -> Scenario:
    """A fast three-view scenario for knob-focused tests."""
    base = dict(
        name="tiny",
        n_samples=60,
        n_clusters=4,
        view_dims=(6, 8, 5),
        latent_dim=6,
    )
    base.update(overrides)
    return Scenario(**base)


# ---------------------------------------------------------------------------
# Spec layer
# ---------------------------------------------------------------------------


class TestScenarioSpec:
    def test_scalar_knobs_broadcast_per_view(self):
        s = _tiny(feature_dropout=0.2, missing_rates=0.1, view_noise=0.5)
        assert s.feature_dropout == (0.2, 0.2, 0.2)
        assert s.missing_rates == (0.1, 0.1, 0.1)
        assert s.view_noise == (0.5, 0.5, 0.5)

    def test_wrong_length_knob_rejected(self):
        with pytest.raises(ValidationError, match="one entry per view"):
            _tiny(feature_dropout=(0.1, 0.2))

    def test_fraction_range_enforced(self):
        with pytest.raises(ValidationError, match="feature_dropout"):
            _tiny(feature_dropout=0.99)
        with pytest.raises(ValidationError, match="missing_rates"):
            _tiny(missing_rates=MAX_MISSING_RATE + 0.05)
        with pytest.raises(ValidationError, match="non-negative"):
            _tiny(view_noise=-0.1)

    def test_unknown_view_kind_rejected(self):
        with pytest.raises(ValidationError, match="unknown view kinds"):
            _tiny(view_kinds=("dense", "sparse", "dense"))

    def test_unknown_view_role_rejected(self):
        with pytest.raises(ValidationError, match="unknown view roles"):
            _tiny(view_roles=("complementary", "noisy", "redundant"))

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError, match="name"):
            _tiny(name="")

    def test_imbalance_below_one_rejected(self):
        with pytest.raises(ValidationError, match="imbalance_ratio"):
            _tiny(imbalance_ratio=0.5)

    def test_invalid_confused_pair_rejected(self):
        with pytest.raises(ValidationError, match="invalid pair"):
            _tiny(confused_pairs=(((0, 9),), (), ()))
        with pytest.raises(ValidationError, match="invalid pair"):
            _tiny(confused_pairs=(((1, 1),), (), ()))

    def test_confusion_schedule_complementary_vs_redundant(self):
        comp = _tiny()
        assert comp.confusion_schedule() == [[(0, 1)], [(2, 3)], [(0, 1)]]
        mixed = _tiny(view_roles=("complementary", "redundant", "redundant"))
        assert mixed.confusion_schedule() == [[(0, 1)], [(0, 1)], [(0, 1)]]

    def test_confusion_schedule_explicit_wins(self):
        s = _tiny(confused_pairs=((), ((1, 2),), ()))
        assert s.confusion_schedule() == [[], [(1, 2)], []]

    def test_confusion_disabled_below_four_clusters(self):
        s = _tiny(n_clusters=3)
        assert s.confusion_schedule() == [[], [], []]

    def test_cluster_sizes_balanced_and_ratio(self):
        assert _tiny().cluster_sizes().tolist() == [15, 15, 15, 15]
        sizes = _tiny(n_samples=240, imbalance_ratio=6.0).cluster_sizes()
        assert sizes.sum() == 240
        assert sizes.max() / sizes.min() == pytest.approx(6.0, rel=0.15)

    def test_cluster_sizes_unachievable_profile_raises(self):
        s = _tiny(n_samples=30, n_clusters=4, imbalance_ratio=200.0)
        with pytest.raises(ValidationError, match="leaves cluster"):
            s.cluster_sizes()

    def test_with_size_resizes_only_n_samples(self):
        s = _tiny(missing_rates=0.2)
        small = s.with_size(24)
        assert small.n_samples == 24
        assert small.missing_rates == s.missing_rates
        assert small.name == s.name

    def test_round_trip_through_dict(self):
        for name in ("clean", "missing_views", "heterogeneous"):
            spec = get_scenario(name)
            assert Scenario.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        payload = _tiny().to_dict()
        payload["surprise"] = 1
        with pytest.raises(ValidationError, match="unknown scenario fields"):
            Scenario.from_dict(payload)

    def test_registry_lookup(self):
        names = available_scenarios()
        assert "confused_pairs" in names and "missing_views" in names
        assert get_scenario("clean") is SCENARIOS["clean"]
        with pytest.raises(ValidationError, match="unknown scenario"):
            get_scenario("nope")

    def test_knob_summary_distinguishes_clean_from_confused(self):
        clean = get_scenario("clean").knob_summary()
        confused = get_scenario("confused_pairs").knob_summary()
        assert clean != confused
        assert "confusion" in confused


# ---------------------------------------------------------------------------
# Generation basics
# ---------------------------------------------------------------------------


class TestGenerate:
    def test_every_registered_scenario_generates(self):
        for name in available_scenarios():
            data = generate(name, n_samples=40)
            assert data.dataset.n_samples == 40
            assert data.dataset.name == f"scenario:{name}"
            for x, dim in zip(data.views, data.scenario.view_dims):
                assert x.shape == (40, dim)
                assert np.all(np.isfinite(x))
            assert data.summary().startswith(name)

    def test_generate_rejects_non_scenarios(self):
        with pytest.raises(ValidationError, match="Scenario"):
            generate(42)

    def test_effective_views_identity_when_complete(self):
        data = generate("clean", n_samples=40)
        assert data.masks is None
        for eff, raw in zip(data.effective_views(), data.views):
            assert eff is raw or np.array_equal(eff, raw)

    def test_effective_views_mean_impute_unobserved(self):
        data = generate("missing_views", n_samples=60)
        assert data.masks is not None
        for eff, raw, mask in zip(
            data.effective_views(), data.views, data.masks
        ):
            assert np.array_equal(eff[mask], raw[mask])
            expected = raw[mask].mean(axis=0)
            for row in eff[~mask]:
                np.testing.assert_allclose(row, expected)

    def test_disabled_knob_leaves_content_identical(self):
        """Stream isolation: rate-0 knobs consume no randomness."""
        base = generate(_tiny())
        zeroed = generate(
            _tiny(feature_dropout=0.0, shuffle_fractions=0.0)
        )
        assert base.content_hash() == zeroed.content_hash()

    def test_enabling_dropout_touches_only_that_view(self):
        base = generate(_tiny())
        dropped = generate(_tiny(feature_dropout=(0.0, 0.0, 0.3)))
        assert np.array_equal(base.views[0], dropped.views[0])
        assert np.array_equal(base.views[1], dropped.views[1])
        assert not np.array_equal(base.views[2], dropped.views[2])
        assert np.array_equal(base.labels, dropped.labels)

    def test_masks_leave_view_content_untouched(self):
        base = generate(_tiny())
        masked = generate(_tiny(missing_rates=(0.3, 0.2, 0.3)))
        for b, m in zip(base.views, masked.views):
            assert np.array_equal(b, m)
        assert masked.masks is not None


# ---------------------------------------------------------------------------
# Property layer (hypothesis)
# ---------------------------------------------------------------------------


class TestKnobProperties:
    @scenario_settings
    @given(
        n=st.integers(40, 120),
        c=st.integers(2, 5),
        d1=st.integers(3, 10),
        d2=st.integers(3, 10),
        seed=st.integers(0, 10_000),
    )
    def test_shapes_and_labels_agree(self, n, c, d1, d2, seed):
        data = generate(
            Scenario(
                name="p",
                n_samples=n,
                n_clusters=c,
                view_dims=(d1, d2),
                latent_dim=4,
                seed=seed,
            )
        )
        assert [x.shape for x in data.views] == [(n, d1), (n, d2)]
        assert data.labels.shape == (n,)
        assert set(np.unique(data.labels)) == set(range(c))

    @scenario_settings
    @given(
        rate=st.floats(0.05, MAX_MISSING_RATE),
        n=st.integers(40, 120),
        seed=st.integers(0, 10_000),
    )
    def test_mask_rates_and_coverage(self, rate, n, seed):
        data = generate(_tiny(n_samples=n, missing_rates=rate, seed=seed))
        assert data.masks is not None
        requested = min(round(rate * n), n - 2)
        coverage = np.zeros(n, dtype=int)
        for mask in data.masks:
            assert mask.shape == (n,) and mask.dtype == bool
            # Coverage repair only ever *re-observes* samples, so the
            # realized missing count never exceeds the request.
            assert 0 <= (~mask).sum() <= requested
            assert mask.sum() >= 2
            coverage += mask
        assert coverage.min() >= 1  # every sample observed somewhere
        # Repairs are rare at low rates: with at most one view affected
        # there is nothing to repair, so the request is realized exactly.
        solo = generate(
            _tiny(n_samples=n, missing_rates=(rate, 0.0, 0.0), seed=seed)
        )
        assert (~solo.masks[0]).sum() == requested

    @scenario_settings
    @given(
        ratio=st.floats(1.0, 8.0),
        c=st.integers(2, 6),
        seed=st.integers(0, 10_000),
    )
    def test_imbalance_ratio_within_tolerance(self, ratio, c, seed):
        s = Scenario(
            name="p",
            n_samples=80 * c,
            n_clusters=c,
            view_dims=(5, 5),
            latent_dim=4,
            imbalance_ratio=ratio,
            seed=seed,
        )
        sizes = s.cluster_sizes()
        assert sizes.sum() == s.n_samples
        assert sizes.min() >= 1
        # Apportionment shifts each quota by < 1 sample.
        assert sizes.max() / sizes.min() == pytest.approx(ratio, rel=0.1)
        counts = np.bincount(generate(s).labels, minlength=c)
        assert np.array_equal(np.sort(counts), np.sort(sizes))

    @scenario_settings
    @given(
        fraction=st.floats(0.1, 0.9),
        seed=st.integers(0, 10_000),
    )
    def test_dropout_fraction_realized(self, fraction, seed):
        data = generate(
            _tiny(
                view_dims=(40, 8, 5), feature_dropout=(fraction, 0, 0),
                seed=seed,
            )
        )
        zeros = np.mean(data.views[0] == 0.0)
        assert zeros == pytest.approx(fraction, abs=0.08)

    @scenario_settings
    @given(
        fraction=st.floats(0.1, 0.9),
        seed=st.integers(0, 10_000),
    )
    def test_shuffle_preserves_row_multiset(self, fraction, seed):
        base = generate(_tiny(seed=seed))
        shuffled = generate(
            _tiny(shuffle_fractions=(fraction, 0, 0), seed=seed)
        )
        a = np.sort(base.views[0].round(9), axis=0)
        b = np.sort(shuffled.views[0].round(9), axis=0)
        np.testing.assert_array_equal(a, b)  # same rows, different order
        moved = np.any(base.views[0] != shuffled.views[0], axis=1).sum()
        assert moved <= round(fraction * base.dataset.n_samples)

    @scenario_settings
    @given(
        name=st.sampled_from(sorted(SCENARIOS)),
        seed=st.integers(0, 10_000),
    )
    def test_same_seed_bit_identical_different_seed_not(self, name, seed):
        first = generate(name, n_samples=48, random_state=seed)
        second = generate(name, n_samples=48, random_state=seed)
        assert first.content_hash() == second.content_hash()
        other = generate(name, n_samples=48, random_state=seed + 1)
        assert other.content_hash() != first.content_hash()


# ---------------------------------------------------------------------------
# Golden layer
# ---------------------------------------------------------------------------

#: blake2b(views + labels + masks) of two registered scenarios at n=80,
#: captured at introduction.  These pin bit-reproducibility: any change
#: to the RNG stream layout, the latent generator, the view renderers,
#: or the knob order shows up here first.
GOLDEN_HASHES = {
    "clean": "9c117408af0dcec68c0eaf1ea99ada45",
    "missing_views": "119b4266de9f000e67e10453256b5527",
}


class TestGoldenHashes:
    @pytest.mark.parametrize("name", sorted(GOLDEN_HASHES))
    def test_content_hash_pinned(self, name):
        data = generate(name, n_samples=80)
        assert data.content_hash() == GOLDEN_HASHES[name], (
            f"scenario {name!r} is no longer bit-reproducible; if the "
            "generation change is intentional, re-pin GOLDEN_HASHES and "
            "re-measure benchmarks/baseline.json"
        )
