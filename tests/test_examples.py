"""Smoke tests for the example scripts (the fast ones).

Examples are documentation that must not rot; each is executed in-process
through its ``main()`` with output captured.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "custom_dataset.py",
    "document_clustering.py",
]


def _load_module(filename):
    path = EXAMPLES_DIR / filename
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("filename", FAST_EXAMPLES)
def test_example_runs(filename, capsys):
    module = _load_module(filename)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 50  # produced a real report


def test_all_examples_have_main():
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        text = path.read_text()
        assert "def main() -> None:" in text, path.name
        assert '__name__ == "__main__"' in text, path.name
        assert '"""' in text.split("\n")[0] or text.startswith('"""'), path.name
