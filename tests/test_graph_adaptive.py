"""Tests for repro.graph.adaptive (CAN graphs and simplex projection)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ValidationError
from repro.graph.adaptive import adaptive_neighbor_affinity, simplex_projection_rowwise


class TestSimplexProjection:
    def test_already_on_simplex(self):
        v = np.array([[0.2, 0.3, 0.5]])
        np.testing.assert_allclose(simplex_projection_rowwise(v), v, atol=1e-12)

    def test_uniform_from_equal_values(self):
        out = simplex_projection_rowwise(np.array([[5.0, 5.0, 5.0, 5.0]]))
        np.testing.assert_allclose(out, 0.25)

    def test_large_entry_dominates(self):
        out = simplex_projection_rowwise(np.array([[100.0, 0.0, 0.0]]))
        np.testing.assert_allclose(out, [[1.0, 0.0, 0.0]], atol=1e-12)

    @settings(deadline=None, max_examples=50)
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 6), st.integers(1, 8)),
            elements=st.floats(-20, 20, allow_nan=False),
        )
    )
    def test_property_rows_on_simplex(self, v):
        out = simplex_projection_rowwise(v)
        assert np.all(out >= -1e-12)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-9)

    @settings(deadline=None, max_examples=30)
    @given(
        arrays(np.float64, st.tuples(st.just(1), st.integers(2, 6)),
               elements=st.floats(-5, 5, allow_nan=False)),
    )
    def test_property_is_euclidean_projection(self, v):
        # The projection must be at least as close to v as any random
        # simplex point.
        out = simplex_projection_rowwise(v)[0]
        rng = np.random.default_rng(0)
        base = np.linalg.norm(out - v[0])
        for _ in range(10):
            p = rng.dirichlet(np.ones(v.shape[1]))
            assert base <= np.linalg.norm(p - v[0]) + 1e-9


class TestAdaptiveNeighborAffinity:
    def test_from_features_valid(self):
        rng = np.random.default_rng(0)
        x = np.vstack([rng.normal(size=(15, 2)), rng.normal(size=(15, 2)) + 9])
        s = adaptive_neighbor_affinity(x, k=6)
        assert s.shape == (30, 30)
        np.testing.assert_allclose(s, s.T, atol=1e-12)
        assert np.all(s >= 0)
        np.testing.assert_allclose(np.diag(s), 0.0, atol=1e-12)

    def test_row_mass_before_symmetrization(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(20, 3))
        s = adaptive_neighbor_affinity(x, k=5, symmetrize_output=False)
        np.testing.assert_allclose(s.sum(axis=1), 1.0, atol=1e-8)

    def test_sparsity(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(25, 2))
        s = adaptive_neighbor_affinity(x, k=4, symmetrize_output=False)
        assert np.all(np.count_nonzero(s, axis=1) <= 4)

    def test_nearest_neighbor_weighted_most(self):
        # Colinear points: the closest neighbor must get the largest mass.
        x = np.array([[0.0], [1.0], [3.0], [6.0], [10.0]])
        s = adaptive_neighbor_affinity(x, k=2, symmetrize_output=False)
        assert s[0, 1] > s[0, 2] > 0
        assert s[0, 3] == 0.0

    def test_from_distances(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(12, 2))
        from repro.graph.distance import pairwise_sq_euclidean

        d = pairwise_sq_euclidean(x)
        s1 = adaptive_neighbor_affinity(x, k=4)
        s2 = adaptive_neighbor_affinity(distances=d, k=4)
        np.testing.assert_allclose(s1, s2, atol=1e-10)

    def test_exactly_one_input_required(self):
        with pytest.raises(ValidationError, match="exactly one"):
            adaptive_neighbor_affinity()
        with pytest.raises(ValidationError, match="exactly one"):
            adaptive_neighbor_affinity(np.zeros((4, 2)), distances=np.zeros((4, 4)))

    def test_blob_separation(self):
        rng = np.random.default_rng(4)
        x = np.vstack([rng.normal(size=(20, 2)), rng.normal(size=(20, 2)) + 12])
        s = adaptive_neighbor_affinity(x, k=5)
        assert s[:20, 20:].sum() == pytest.approx(0.0, abs=1e-12)

    def test_k_out_of_range_raises(self):
        # The CAN closed form needs k+1 sorted neighbors beyond self, so
        # the valid range is [1, n-2]; out-of-range k must raise instead
        # of silently clamping (callers that want clamping do it
        # explicitly).
        x = np.random.default_rng(5).normal(size=(10, 2))
        with pytest.raises(ValidationError, match=r"k must be in \[1, 8\]"):
            adaptive_neighbor_affinity(x, k=9)
        with pytest.raises(ValidationError, match=r"k must be in \[1, 8\]"):
            adaptive_neighbor_affinity(x, k=0)
        with pytest.raises(ValidationError, match="k must be in"):
            adaptive_neighbor_affinity(x, k=-3)

    def test_k_boundary_values_accepted(self):
        x = np.random.default_rng(6).normal(size=(10, 2))
        for k in (1, 8):
            s = adaptive_neighbor_affinity(x, k=k, symmetrize_output=False)
            np.testing.assert_allclose(s.sum(axis=1), 1.0, atol=1e-8)
