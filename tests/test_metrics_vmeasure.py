"""Tests for repro.metrics.vmeasure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.nmi import normalized_mutual_information
from repro.metrics.vmeasure import (
    completeness_score,
    homogeneity_score,
    v_measure_score,
)

label_vectors = st.lists(st.integers(0, 4), min_size=2, max_size=30)


class TestHomogeneity:
    def test_perfect(self):
        assert homogeneity_score([0, 0, 1, 1], [1, 1, 0, 0]) == 1.0

    def test_singletons_are_homogeneous(self):
        assert homogeneity_score([0, 0, 1, 1], [0, 1, 2, 3]) == 1.0

    def test_merged_clusters_fail(self):
        assert homogeneity_score([0, 0, 1, 1], [0, 0, 0, 0]) == 0.0

    def test_trivial_truth(self):
        assert homogeneity_score([0, 0], [0, 1]) == 1.0


class TestCompleteness:
    def test_perfect(self):
        assert completeness_score([0, 0, 1, 1], [1, 1, 0, 0]) == 1.0

    def test_merging_is_complete(self):
        assert completeness_score([0, 0, 1, 1], [0, 0, 0, 0]) == 1.0

    def test_splitting_fails(self):
        assert completeness_score([0, 0, 0, 0], [0, 1, 2, 3]) == 0.0

    def test_duality_with_homogeneity(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 3, size=40)
        b = rng.integers(0, 4, size=40)
        assert completeness_score(a, b) == pytest.approx(
            homogeneity_score(b, a)
        )


class TestVMeasure:
    def test_perfect(self):
        assert v_measure_score([0, 1, 2], [2, 0, 1]) == 1.0

    def test_equals_arithmetic_nmi(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 3, size=50)
        b = rng.integers(0, 5, size=50)
        assert v_measure_score(a, b) == pytest.approx(
            normalized_mutual_information(a, b, average="arithmetic"),
            abs=1e-10,
        )

    def test_beta_weighting(self):
        # Over-merged clustering: h = 0 -> any beta gives 0.
        assert v_measure_score([0, 0, 1, 1], [0, 0, 0, 0], beta=2.0) == 0.0
        # Partial case: larger beta weights completeness more.
        truth = [0, 0, 1, 1, 2, 2]
        pred = [0, 0, 1, 1, 1, 1]  # merges classes 1 and 2
        v_h = v_measure_score(truth, pred, beta=0.25)
        v_c = v_measure_score(truth, pred, beta=4.0)
        assert v_c > v_h  # pred is complete but not homogeneous

    @settings(deadline=None, max_examples=40)
    @given(label_vectors)
    def test_property_bounds_and_symmetric_roles(self, labels):
        rng = np.random.default_rng(7)
        pred = rng.integers(0, 3, size=len(labels))
        h = homogeneity_score(labels, pred)
        c = completeness_score(labels, pred)
        v = v_measure_score(labels, pred)
        assert 0.0 <= h <= 1.0
        assert 0.0 <= c <= 1.0
        assert min(h, c) - 1e-9 <= v <= max(h, c) + 1e-9
