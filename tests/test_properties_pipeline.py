"""Hypothesis property tests over the full clustering pipeline.

Random small multi-view datasets (random sizes, dimensions, cluster
counts, seeds) must always produce structurally valid results: complete
label ranges, orthonormal factors, monotone objectives, metric bounds.
"""

import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import UnifiedMVSC
from repro.core.anchor_model import AnchorMVSC
from repro.datasets import make_multiview_blobs
from repro.exceptions import ConvergenceWarning
from repro.linalg.checks import is_orthonormal
from repro.metrics import evaluate_clustering

pipeline_settings = settings(
    deadline=None,
    max_examples=12,
    suppress_health_check=[HealthCheck.too_slow],
)


def _dataset(n_per_cluster, c, d1, d2, seed):
    return make_multiview_blobs(
        n_per_cluster * c,
        c,
        view_dims=(d1, d2),
        separation=5.0,
        random_state=seed,
    )


class TestUMSCProperties:
    @pipeline_settings
    @given(
        n_per_cluster=st.integers(8, 15),
        c=st.integers(2, 5),
        d1=st.integers(4, 12),
        d2=st.integers(4, 12),
        seed=st.integers(0, 10_000),
    )
    def test_structural_invariants(self, n_per_cluster, c, d1, d2, seed):
        ds = _dataset(n_per_cluster, c, d1, d2, seed)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            result = UnifiedMVSC(c, random_state=seed).fit(ds.views)
        n = ds.n_samples
        # Labels cover exactly 0..c-1 with no empty cluster.
        counts = np.bincount(result.labels, minlength=c)
        assert counts.shape == (c,)
        assert np.all(counts >= 1)
        # Factors satisfy their constraints.
        assert is_orthonormal(result.embedding, tol=1e-6)
        assert is_orthonormal(result.rotation, tol=1e-6)
        assert result.indicator.shape == (n, c)
        np.testing.assert_allclose(result.indicator.sum(axis=1), 1.0)
        # Weights are positive and finite.
        assert np.all(result.view_weights > 0)
        assert np.all(np.isfinite(result.view_weights))
        # Objective history descends up to the w-step tolerance.
        h = result.objective_history
        for a, b in zip(h, h[1:]):
            assert b <= a + 1e-3 * max(1.0, abs(a))

    @pipeline_settings
    @given(seed=st.integers(0, 10_000))
    def test_metrics_bounded_for_any_result(self, seed):
        ds = _dataset(10, 3, 6, 8, seed)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            result = UnifiedMVSC(3, random_state=seed).fit(ds.views)
        scores = evaluate_clustering(
            ds.labels,
            result.labels,
            metrics=("acc", "nmi", "purity", "ari", "fscore"),
        )
        assert 0.0 <= scores["acc"] <= 1.0
        assert 0.0 <= scores["nmi"] <= 1.0
        assert 0.0 < scores["purity"] <= 1.0
        assert -1.0 <= scores["ari"] <= 1.0
        assert 0.0 <= scores["fscore"] <= 1.0
        assert scores["purity"] >= scores["acc"] - 1e-12


class TestAnchorProperties:
    @pipeline_settings
    @given(
        c=st.integers(2, 4),
        seed=st.integers(0, 10_000),
    )
    def test_anchor_labels_complete(self, c, seed):
        ds = _dataset(20, c, 5, 7, seed)
        labels = AnchorMVSC(
            c, n_anchors=25, random_state=seed
        ).fit_predict(ds.views)
        counts = np.bincount(labels, minlength=c)
        assert np.all(counts >= 1)
        assert labels.shape == (ds.n_samples,)
