"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synth import make_multiview_blobs


@pytest.fixture
def rng():
    """A deterministic generator for test-local randomness."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_dataset():
    """A small, well-separated 3-cluster multi-view dataset (fast, easy)."""
    return make_multiview_blobs(
        90,
        3,
        view_dims=(12, 18),
        view_noise=(0.1, 0.2),
        view_distractors=(0.0, 0.0),
        view_outliers=(0.0, 0.0),
        separation=6.0,
        random_state=7,
    )


@pytest.fixture(scope="session")
def medium_dataset():
    """A harder 4-cluster dataset with heterogeneous views."""
    return make_multiview_blobs(
        160,
        4,
        view_dims=(20, 30, 15),
        view_noise=(0.2, 0.4, 0.6),
        separation=4.5,
        random_state=11,
    )


@pytest.fixture(scope="session")
def affinity_pair(small_dataset):
    """Per-view affinities of the small dataset (precomputed once)."""
    from repro.core.graph_builder import build_multiview_affinities

    return build_multiview_affinities(small_dataset.views, n_neighbors=8)
