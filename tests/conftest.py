"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synth import make_multiview_blobs


@pytest.fixture(autouse=True)
def _pin_default_backend():
    """Keep the tier-1 suite on the numpy backend regardless of environment.

    CI runs a leg with ``REPRO_BACKEND=float32`` to prove a non-default
    backend survives the whole suite's *code paths*; the bit-identity
    assertions, however, define the numpy contract, so the ambient
    backend is pinned back to numpy here.  Tests that exercise alternate
    backends enter :class:`repro.backends.use_backend` themselves, which
    nests deeper than this fixture and therefore wins.
    """
    import os

    from repro.backends import use_backend

    if os.environ.get("REPRO_BACKEND"):
        with use_backend("numpy"):
            yield
    else:
        yield


@pytest.fixture
def rng():
    """A deterministic generator for test-local randomness."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_dataset():
    """A small, well-separated 3-cluster multi-view dataset (fast, easy)."""
    return make_multiview_blobs(
        90,
        3,
        view_dims=(12, 18),
        view_noise=(0.1, 0.2),
        view_distractors=(0.0, 0.0),
        view_outliers=(0.0, 0.0),
        separation=6.0,
        random_state=7,
    )


@pytest.fixture(scope="session")
def medium_dataset():
    """A harder 4-cluster dataset with heterogeneous views."""
    return make_multiview_blobs(
        160,
        4,
        view_dims=(20, 30, 15),
        view_noise=(0.2, 0.4, 0.6),
        separation=4.5,
        random_state=11,
    )


@pytest.fixture(scope="session")
def affinity_pair(small_dataset):
    """Per-view affinities of the small dataset (precomputed once)."""
    from repro.core.graph_builder import build_multiview_affinities

    return build_multiview_affinities(small_dataset.views, n_neighbors=8)


# --- Degenerate datasets (shared by the robustness test suites) -----------


@pytest.fixture(scope="session")
def outlier_dataset():
    """3 clusters with a heavy outlier fraction in every view."""
    return make_multiview_blobs(
        72,
        3,
        view_dims=(10, 14),
        view_noise=(0.2, 0.3),
        view_outliers=(0.15, 0.25),
        separation=5.0,
        name="outlier_heavy",
        random_state=31,
    )


@pytest.fixture(scope="session")
def duplicated_dataset():
    """2 clusters where a quarter of the samples are exact duplicates."""
    from repro.datasets.container import MultiViewDataset

    base = make_multiview_blobs(
        60,
        2,
        view_dims=(8, 12),
        view_noise=(0.2, 0.3),
        separation=6.0,
        random_state=33,
    )
    views = []
    for x in base.views:
        x = x.copy()
        # Overwrite the back quarter with copies of the front quarter, so
        # duplicate rows exist within and across clusters' k-NN ranges.
        x[-15:] = x[:15]
        views.append(x)
    labels = base.labels.copy()
    labels[-15:] = labels[:15]
    return MultiViewDataset(
        name="duplicated_samples", views=views, labels=labels
    )


@pytest.fixture(scope="session")
def single_informative_dataset():
    """One clean view plus one view of pure structure-free noise."""
    from repro.datasets.container import MultiViewDataset

    base = make_multiview_blobs(
        66,
        3,
        view_dims=(12,),
        view_noise=(0.1,),
        separation=6.0,
        random_state=35,
    )
    rng = np.random.default_rng(36)
    noise_view = rng.normal(size=(66, 9))
    return MultiViewDataset(
        name="single_informative",
        views=[base.views[0], noise_view],
        labels=base.labels,
    )


@pytest.fixture(
    params=["outlier", "duplicated", "single_informative"],
    scope="session",
)
def degenerate_dataset(request):
    """Parametrized sweep over every shared degenerate dataset."""
    return request.getfixturevalue(f"{request.param}_dataset")
