"""Optimality tests for the discrete machinery against brute force.

On problems small enough to enumerate every feasible assignment, the
coordinate-descent Y-step must never leave an improving single move on the
table, and the multi-restart rotation initialization should find the
global optimum of the rotation objective almost always.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.discrete import (
    indicator_coordinate_descent,
    rotation_initialize,
    rotation_objective,
    scaled_indicator,
)


def _all_assignments(n, c):
    """Every label vector with no empty cluster."""
    for combo in itertools.product(range(c), repeat=n):
        labels = np.array(combo, dtype=np.int64)
        if np.bincount(labels, minlength=c).min() >= 1:
            yield labels


def _global_best(m, c):
    best_val, best = -np.inf, None
    for labels in _all_assignments(m.shape[0], c):
        val = rotation_objective(m, labels, c)
        if val > best_val:
            best_val, best = val, labels.copy()
    return best_val, best


class TestCDAgainstBruteForce:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(0, 5000))
    def test_cd_reaches_local_optimum(self, seed):
        rng = np.random.default_rng(seed)
        n, c = 7, 2
        m = rng.normal(size=(n, c))
        start = (np.arange(n) % c).astype(np.int64)
        result = indicator_coordinate_descent(m, start, c)
        base = rotation_objective(m, result, c)
        # No single-point move improves the objective (local optimality).
        counts = np.bincount(result, minlength=c)
        for i in range(n):
            a = result[i]
            if counts[a] <= 1:
                continue
            for b in range(c):
                if b == a:
                    continue
                moved = result.copy()
                moved[i] = b
                assert rotation_objective(m, moved, c) <= base + 1e-9

    @settings(deadline=None, max_examples=10)
    @given(st.integers(0, 5000))
    def test_cd_bounded_by_global(self, seed):
        rng = np.random.default_rng(seed)
        n, c = 6, 2
        m = rng.normal(size=(n, c))
        start = (np.arange(n) % c).astype(np.int64)
        result = indicator_coordinate_descent(m, start, c)
        global_val, _ = _global_best(m, c)
        assert rotation_objective(m, result, c) <= global_val + 1e-9

    def test_cd_from_global_stays_global(self):
        rng = np.random.default_rng(3)
        m = rng.normal(size=(6, 2))
        _, best = _global_best(m, 2)
        result = indicator_coordinate_descent(m, best, 2)
        assert rotation_objective(m, result, 2) == pytest.approx(
            rotation_objective(m, best, 2)
        )


class TestRotationInitGlobalRecovery:
    @pytest.mark.parametrize("seed", range(5))
    def test_finds_global_on_clean_indicator(self, seed):
        # F = G(Y*) Q for a random orthogonal Q: the global optimum of the
        # rotation objective is Y* (value c); multi-restart init must
        # recover it.
        rng = np.random.default_rng(seed)
        n, c = 18, 3
        truth = (np.arange(n) % c).astype(np.int64)
        rng.shuffle(truth)
        g = scaled_indicator(truth, c)
        q, _ = np.linalg.qr(rng.normal(size=(c, c)))
        f = g @ q
        rot, labels = rotation_initialize(f, c, n_restarts=10, random_state=seed)
        assert rotation_objective(f @ rot, labels, c) == pytest.approx(
            float(c), abs=1e-6
        )
