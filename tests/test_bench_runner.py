"""Tests for the benchmark-regression tracker (``repro.bench``).

Covers the report schema and persistence round-trip, the comparison /
regression gate (including the noise floor and missing-coverage
failure), the CLI exit codes for ``repro bench {run,compare}``, and the
acceptance path from ISSUE 5: arming a fault-injection ``delay`` around
:func:`run_benches` must make ``repro bench compare`` exit nonzero.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.bench import (
    BENCHES,
    DEFAULT_THRESHOLD,
    MIN_GATED_SECONDS,
    SCHEMA_VERSION,
    compare_reports,
    format_comparison,
    load_report,
    machine_fingerprint,
    run_benches,
    write_report,
)
from repro.cli import main
from repro.exceptions import ValidationError
from repro.robust import FaultSpec, inject_faults


def _report(seconds_by_name, tag="fab"):
    """Fabricate a minimal valid report with given headline seconds."""
    return {
        "schema_version": SCHEMA_VERSION,
        "tag": tag,
        "created_unix": 0.0,
        "quick": True,
        "repeats": 1,
        "machine": machine_fingerprint(),
        "benches": {
            name: {
                "description": name,
                "seconds": seconds,
                "runs": [seconds],
                "metrics": {},
                "resources": {},
            }
            for name, seconds in seconds_by_name.items()
        },
    }


class TestRunBenches:
    def test_report_schema_and_round_trip(self, tmp_path):
        report = run_benches(["graph_build"], quick=True, repeats=2, tag="t")
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["tag"] == "t"
        assert report["quick"] is True
        assert set(report["machine"]) >= {"python", "numpy", "cpu_count"}
        entry = report["benches"]["graph_build"]
        assert entry["seconds"] == min(entry["runs"])
        assert len(entry["runs"]) == 2
        assert entry["resources"]["peak_rss_bytes"] > 0
        # The traced bench leaves a metrics snapshot in the report.
        assert set(entry["metrics"]) == {"counters", "gauges", "histograms"}

        path = tmp_path / "BENCH_t.json"
        write_report(report, path)
        loaded = load_report(path)
        assert loaded["benches"]["graph_build"]["seconds"] == pytest.approx(
            entry["seconds"]
        )

    def test_unknown_bench_name_rejected(self):
        with pytest.raises(ValidationError, match="unknown bench"):
            run_benches(["nope"], quick=True)

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValidationError, match="repeats"):
            run_benches(["graph_build"], quick=True, repeats=0)

    def test_declared_suite_mirrors_existing_benches(self):
        # Every tracked bench names its source bench_* workload.
        assert set(BENCHES) == {
            "umsc_fit",
            "anchor_fit",
            "graph_build",
            "predict_batch",
            "serving_throughput",
            "scenario_matrix",
            "streaming",
        }
        for description, _ in BENCHES.values():
            assert "bench_" in description


class TestLoadReport:
    def test_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="cannot read"):
            load_report(path)

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot read"):
            load_report(tmp_path / "absent.json")

    def test_rejects_wrong_schema_version(self, tmp_path):
        path = tmp_path / "future.json"
        report = _report({"graph_build": 1.0})
        report["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(report))
        with pytest.raises(ValidationError, match="schema_version"):
            load_report(path)

    def test_rejects_non_report_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValidationError, match="schema_version"):
            load_report(path)


class TestCompareReports:
    def test_within_threshold_is_ok(self):
        cmp = compare_reports(
            _report({"a": 1.0, "b": 2.0}),
            _report({"a": 1.1, "b": 2.0 * (1 + DEFAULT_THRESHOLD)}),
        )
        assert cmp.ok
        assert cmp.regressions == []

    def test_regression_beyond_threshold_fails(self):
        cmp = compare_reports(
            _report({"a": 1.0}), _report({"a": 1.5}), threshold=0.25
        )
        assert not cmp.ok
        assert [d.name for d in cmp.regressions] == ["a"]
        assert cmp.regressions[0].ratio == pytest.approx(1.5)

    def test_speedups_never_fail(self):
        cmp = compare_reports(_report({"a": 2.0}), _report({"a": 0.5}))
        assert cmp.ok

    def test_noise_floor_is_not_gated(self):
        fast = MIN_GATED_SECONDS / 2
        cmp = compare_reports(
            _report({"a": fast}), _report({"a": fast * 100})
        )
        assert cmp.ok  # sub-floor baselines are timer noise

    def test_missing_bench_fails(self):
        cmp = compare_reports(
            _report({"a": 1.0, "b": 1.0}), _report({"a": 1.0})
        )
        assert not cmp.ok
        assert cmp.missing == ["b"]

    def test_new_bench_is_informational(self):
        cmp = compare_reports(
            _report({"a": 1.0}), _report({"a": 1.0, "c": 9.0})
        )
        assert cmp.ok
        assert cmp.new == ["c"]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValidationError, match="threshold"):
            compare_reports(_report({}), _report({}), threshold=-0.1)

    def test_format_mentions_verdicts(self):
        cmp = compare_reports(_report({"a": 1.0}), _report({"a": 3.0}))
        text = format_comparison(cmp)
        assert "REGRESSED" in text and "FAIL" in text
        ok = compare_reports(_report({"a": 1.0}), _report({"a": 1.0}))
        assert "0 regression(s)" in format_comparison(ok)


class TestBenchCli:
    def test_bench_run_writes_parseable_report(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "BENCH_cli.json"
        code = main(
            [
                "bench",
                "run",
                "--quick",
                "--benches",
                "graph_build",
                "--repeats",
                "1",
                "--tag",
                "cli",
                "--out",
                str(path),
            ],
            out=out,
        )
        assert code == 0
        report = load_report(path)
        assert report["tag"] == "cli"
        assert "graph_build" in report["benches"]
        assert "graph_build" in out.getvalue()

    def test_bench_compare_exit_codes(self, tmp_path):
        base = tmp_path / "base.json"
        same = tmp_path / "same.json"
        slow = tmp_path / "slow.json"
        write_report(_report({"a": 1.0}), base)
        write_report(_report({"a": 1.0}), same)
        write_report(_report({"a": 2.0}), slow)

        out = io.StringIO()
        assert main(["bench", "compare", str(base), str(same)], out=out) == 0
        out = io.StringIO()
        assert main(["bench", "compare", str(base), str(slow)], out=out) == 1
        assert "REGRESSED" in out.getvalue()
        out = io.StringIO()
        code = main(
            ["bench", "compare", str(base), str(slow), "--warn-only"], out=out
        )
        assert code == 0
        assert "warn-only" in out.getvalue()

    def test_bench_compare_threshold_flag(self, tmp_path):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        write_report(_report({"a": 1.0}), base)
        write_report(_report({"a": 1.4}), cur)
        args = ["bench", "compare", str(base), str(cur)]
        assert main(args + ["--threshold", "0.5"], out=io.StringIO()) == 0
        assert main(args + ["--threshold", "0.1"], out=io.StringIO()) == 1


@pytest.mark.faults
class TestRegressionGateAcceptance:
    def test_injected_delay_trips_the_compare_gate(self, tmp_path):
        """ISSUE 5 acceptance: a persistent ``delay`` fault on the fit
        site slows ``umsc_fit`` enough that ``repro bench compare``
        exits nonzero against the clean baseline."""
        clean = run_benches(["umsc_fit"], quick=True, repeats=1, tag="clean")
        baseline_s = clean["benches"]["umsc_fit"]["seconds"]
        assert baseline_s > MIN_GATED_SECONDS

        delay = max(1.0, baseline_s)  # guarantees > threshold slowdown
        spec = FaultSpec("model.fit", mode="delay", delay=delay, times=None)
        with inject_faults(spec) as plan:
            slowed = run_benches(
                ["umsc_fit"], quick=True, repeats=1, tag="slow"
            )
        assert plan.triggered  # the fault actually fired
        assert (
            slowed["benches"]["umsc_fit"]["seconds"]
            > baseline_s * (1 + DEFAULT_THRESHOLD)
        )

        base_path = tmp_path / "BENCH_clean.json"
        cur_path = tmp_path / "BENCH_slow.json"
        write_report(clean, base_path)
        write_report(slowed, cur_path)
        out = io.StringIO()
        code = main(
            ["bench", "compare", str(base_path), str(cur_path)], out=out
        )
        assert code == 1
        assert "REGRESSED" in out.getvalue()
