"""Tests for repro.core.discrete (rotation / indicator machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.discrete import (
    anchor_rotation,
    indicator_coordinate_descent,
    rotation_initialize,
    rotation_objective,
    scaled_indicator,
)
from repro.exceptions import ValidationError


def _clean_embedding(sizes, seed=0):
    """Ideal indicator-like embedding: G(Y) for a known partition."""
    labels = np.repeat(np.arange(len(sizes)), sizes)
    rng = np.random.default_rng(seed)
    rng.shuffle(labels)
    g = scaled_indicator(labels, len(sizes))
    return g, labels


class TestScaledIndicator:
    def test_orthonormal_columns(self):
        g, _ = _clean_embedding([4, 6, 2])
        np.testing.assert_allclose(g.T @ g, np.eye(3), atol=1e-12)

    def test_values(self):
        g = scaled_indicator(np.array([0, 0, 1, 1]), 2)
        np.testing.assert_allclose(g[0, 0], 1 / np.sqrt(2))

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            scaled_indicator(np.array([0, 0, 0]), 2)


class TestRotationObjective:
    def test_upper_bound_sqrt_counts(self):
        # For M = G(Y) the objective is exactly c (each column contributes
        # n_j / sqrt(n_j) / sqrt(n_j) = 1).
        g, labels = _clean_embedding([5, 3, 7])
        assert rotation_objective(g, labels, 3) == pytest.approx(3.0)

    def test_wrong_assignment_scores_lower(self):
        g, labels = _clean_embedding([5, 5])
        wrong = 1 - labels
        assert rotation_objective(g, wrong, 2) < rotation_objective(g, labels, 2)


class TestCoordinateDescent:
    def test_monotone_objective(self):
        rng = np.random.default_rng(0)
        m = rng.normal(size=(40, 4))
        labels = rng.integers(0, 4, size=40).astype(np.int64)
        labels[:4] = np.arange(4)  # keep clusters non-empty
        before = rotation_objective(m, labels, 4)
        improved = indicator_coordinate_descent(m, labels, 4)
        after = rotation_objective(m, improved, 4)
        assert after >= before - 1e-12

    def test_no_cluster_emptied(self):
        rng = np.random.default_rng(1)
        m = rng.normal(size=(20, 5))
        labels = np.arange(20) % 5
        out = indicator_coordinate_descent(m, labels.astype(np.int64), 5)
        assert np.all(np.bincount(out, minlength=5) >= 1)

    def test_recovers_perfect_partition(self):
        g, labels = _clean_embedding([10, 10, 10], seed=2)
        noisy = labels.copy()
        rng = np.random.default_rng(3)
        flips = rng.choice(30, size=6, replace=False)
        noisy[flips] = (noisy[flips] + 1) % 3
        recovered = indicator_coordinate_descent(g, noisy, 3)
        assert rotation_objective(g, recovered, 3) >= rotation_objective(
            g, labels, 3
        ) - 1e-9

    def test_requires_feasible_start(self):
        m = np.zeros((4, 3))
        with pytest.raises(ValidationError, match="empty"):
            indicator_coordinate_descent(m, np.zeros(4, dtype=np.int64), 3)

    def test_column_mismatch(self):
        with pytest.raises(ValidationError, match="columns"):
            indicator_coordinate_descent(
                np.zeros((4, 2)), np.array([0, 1, 2, 0]), 3
            )

    @settings(deadline=None, max_examples=20)
    @given(st.integers(2, 4), st.integers(0, 500))
    def test_property_monotone_and_feasible(self, c, seed):
        rng = np.random.default_rng(seed)
        n = 6 * c
        m = rng.normal(size=(n, c))
        labels = (np.arange(n) % c).astype(np.int64)
        before = rotation_objective(m, labels, c)
        out = indicator_coordinate_descent(m, labels, c)
        assert rotation_objective(m, out, c) >= before - 1e-12
        assert np.all(np.bincount(out, minlength=c) >= 1)


class TestAnchorRotation:
    def test_orthogonal_output(self):
        rng = np.random.default_rng(0)
        f, _ = np.linalg.qr(rng.normal(size=(30, 4)))
        rot = anchor_rotation(f, rng)
        np.testing.assert_allclose(rot.T @ rot, np.eye(4), atol=1e-10)


class TestRotationInitialize:
    def test_recovers_clean_partition(self):
        g, labels = _clean_embedding([12, 8, 10], seed=4)
        # Rotate the clean indicator arbitrarily: init must undo it.
        rng = np.random.default_rng(5)
        q, _ = np.linalg.qr(rng.normal(size=(3, 3)))
        f = g @ q
        _, found = rotation_initialize(f, 3, n_restarts=10, random_state=0)
        from repro.metrics import clustering_accuracy

        assert clustering_accuracy(labels, found) == 1.0

    def test_rotation_is_orthogonal(self):
        g, _ = _clean_embedding([6, 6, 6], seed=6)
        rot, _ = rotation_initialize(g, 3, random_state=1)
        np.testing.assert_allclose(rot.T @ rot, np.eye(3), atol=1e-9)

    def test_all_clusters_present(self):
        rng = np.random.default_rng(7)
        f, _ = np.linalg.qr(rng.normal(size=(50, 5)))
        _, labels = rotation_initialize(f, 5, random_state=2)
        assert np.all(np.bincount(labels, minlength=5) >= 1)

    def test_validation(self):
        g, _ = _clean_embedding([5, 5])
        with pytest.raises(ValidationError, match="columns"):
            rotation_initialize(g, 3)
        with pytest.raises(ValidationError, match="n_restarts"):
            rotation_initialize(g, 2, n_restarts=0)
