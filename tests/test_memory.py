"""Tests for per-phase memory attribution and the bench memory gate.

Covers :mod:`repro.observability.memory` — the dormant
``memory_span`` → ``NOOP_SPAN`` chain, :class:`MemorySession`
recording/nesting, :func:`use_memory_tracking` tracemalloc ownership —
plus the :mod:`repro.bench` integration: the per-bench ``memory``
entry, :class:`~repro.bench.MemoryDelta` gating in
:func:`~repro.bench.compare_reports` (own threshold, 16 MB noise
floor, warn-only on missing fields), and the acceptance path where an
injected allocation blow-up in a tracked bench fails the gate.  The
single-use :class:`~repro.observability.resource.ResourceSampler`
contract rides along (satellite).
"""

from __future__ import annotations

import copy
import tracemalloc

import pytest

from repro import bench as bench_mod
from repro.exceptions import ValidationError
from repro.observability import Trace, use_trace
from repro.observability.memory import (
    MemorySession,
    current_memory,
    memory_span,
    use_memory_tracking,
)
from repro.observability.resource import ResourceSampler
from repro.observability.trace import NOOP_SPAN


class TestDormancy:
    def test_memory_span_is_shared_noop_without_trace(self):
        assert current_memory() is None
        assert memory_span("anything") is NOOP_SPAN
        assert memory_span("anything", tag=1) is NOOP_SPAN

    def test_memory_span_without_session_still_profiles(self):
        trace = Trace("no-session")
        with use_trace(trace):
            with memory_span("phase.x"):
                pass
        assert any(s.name == "phase.x" for s in trace.spans)


class TestMemorySession:
    def test_session_records_outermost_spans_only(self):
        trace = Trace("mem")
        with use_trace(trace):
            with use_memory_tracking() as session:
                with memory_span("outer"):
                    blob = bytearray(8 << 20)
                    with memory_span("inner"):
                        blob2 = bytearray(4 << 20)
                del blob, blob2
        table = session.table()
        assert "outer" in session.sites()
        # The nested span must not double-count: only the outermost
        # span of a stack measures (tracemalloc peaks are global).
        assert "inner" not in table
        assert table["outer"]["peak_alloc_bytes"] >= 8 << 20
        assert session.peak_alloc_bytes >= 8 << 20

    def test_session_table_renders(self):
        trace = Trace("mem-table")
        with use_trace(trace):
            with use_memory_tracking() as session:
                with memory_span("alloc.phase"):
                    blob = bytearray(2 << 20)
                del blob
        table = session.table()
        assert table["alloc.phase"]["calls"] == 1
        assert table["alloc.phase"]["peak_alloc_bytes"] >= 2 << 20

    def test_use_memory_tracking_owns_tracemalloc(self):
        assert not tracemalloc.is_tracing()
        with use_memory_tracking():
            assert tracemalloc.is_tracing()
        assert not tracemalloc.is_tracing()

    def test_use_memory_tracking_respects_existing_tracing(self):
        tracemalloc.start()
        try:
            with use_memory_tracking():
                assert tracemalloc.is_tracing()
            assert tracemalloc.is_tracing()  # we didn't start it
        finally:
            tracemalloc.stop()

    def test_span_attributes_carry_memory(self):
        trace = Trace("mem-attrs")
        with use_trace(trace):
            with use_memory_tracking():
                with memory_span("phase.y"):
                    blob = bytearray(1 << 20)
                del blob
        span = next(s for s in trace.spans if s.name == "phase.y")
        mem = span.attributes["memory"]
        assert mem["peak_alloc_bytes"] >= 1 << 20


class TestResourceSamplerSingleUse:
    def test_restart_after_stop_raises(self):
        sampler = ResourceSampler(interval_seconds=0.01).start()
        sampler.stop()
        with pytest.raises(ValidationError):
            sampler.start()

    def test_stop_is_idempotent(self):
        sampler = ResourceSampler(interval_seconds=0.01).start()
        sampler.stop()
        sampler.stop()  # no error


def _quick_report(**kwargs):
    return bench_mod.run_benches(
        ["graph_build"], quick=True, repeats=1, tag="t", profile=False,
        **kwargs,
    )


class TestBenchMemoryPass:
    def test_report_entries_carry_memory_fields(self):
        report = _quick_report()
        entry = report["benches"]["graph_build"]
        mem = entry["memory"]
        assert mem["peak_rss_bytes"] > 0
        assert mem["peak_alloc_bytes"] > 0
        assert isinstance(mem["sites"], dict)

    def test_no_memory_flag_omits_the_pass(self):
        report = _quick_report(memory=False)
        assert "memory" not in report["benches"]["graph_build"]


def _fake_report(seconds=1.0, rss=64 << 20, alloc=64 << 20, name="b"):
    """A minimal hand-built report the comparator accepts."""
    return {
        "schema_version": bench_mod.SCHEMA_VERSION,
        "tag": "fake",
        "quick": True,
        "benches": {
            name: {
                "seconds": seconds,
                "repeats": [seconds],
                "memory": {
                    "peak_rss_bytes": rss,
                    "peak_alloc_bytes": alloc,
                    "sites": [],
                },
            }
        },
    }


class TestMemoryGate:
    def test_blowup_fails_the_gate(self):
        base = _fake_report(alloc=64 << 20, rss=64 << 20)
        cur = _fake_report(alloc=256 << 20, rss=256 << 20)
        cmp_ = bench_mod.compare_reports(base, cur)
        assert not cmp_.ok
        regressed = {
            (d.name, d.metric) for d in cmp_.memory_regressions
        }
        assert ("b", "peak_alloc_bytes") in regressed
        assert ("b", "peak_rss_bytes") in regressed
        text = bench_mod.format_comparison(cmp_)
        assert "memory regression" in text and "FAIL" in text

    def test_within_threshold_passes(self):
        base = _fake_report(alloc=64 << 20, rss=64 << 20)
        cur = _fake_report(alloc=80 << 20, rss=80 << 20)  # +25% < +50%
        assert bench_mod.compare_reports(base, cur).ok

    def test_custom_threshold_tightens_the_gate(self):
        base = _fake_report(alloc=64 << 20, rss=64 << 20)
        cur = _fake_report(alloc=80 << 20, rss=80 << 20)
        cmp_ = bench_mod.compare_reports(base, cur, memory_threshold=0.1)
        assert cmp_.memory_regressions and not cmp_.ok

    def test_sub_floor_baselines_are_never_gated(self):
        base = _fake_report(alloc=1 << 20, rss=1 << 20)
        cur = _fake_report(alloc=10 << 20, rss=10 << 20)  # 10x but tiny
        cmp_ = bench_mod.compare_reports(base, cur)
        assert cmp_.ok and not cmp_.memory_regressions

    def test_missing_memory_fields_compare_warn_only(self):
        base = _fake_report()
        cur = _fake_report()
        del cur["benches"]["b"]["memory"]
        cmp_ = bench_mod.compare_reports(base, cur)
        assert cmp_.ok
        assert cmp_.memory_skipped
        text = bench_mod.format_comparison(cmp_)
        assert "memory fields missing" in text

    def test_malformed_memory_fields_compare_warn_only(self):
        base = _fake_report()
        cur = copy.deepcopy(base)
        cur["benches"]["b"]["memory"]["peak_alloc_bytes"] = "oops"
        cmp_ = bench_mod.compare_reports(base, cur)
        assert cmp_.ok
        assert any("peak_alloc_bytes" in s for s in cmp_.memory_skipped)

    def test_invalid_memory_threshold_rejected(self):
        base = _fake_report()
        with pytest.raises(ValidationError):
            bench_mod.compare_reports(base, base, memory_threshold=-1.0)


class TestMemoryGateAcceptance:
    @pytest.mark.slow
    def test_injected_blowup_in_tracked_bench_fails_gate(self, monkeypatch):
        """Acceptance: blow up a real tracked bench's allocations and
        the memory gate (not the time gate) catches it."""
        description, factory = bench_mod.BENCHES["graph_build"]

        def bloated_factory(quick):
            work = factory(quick)

            def bloated():
                ballast = bytearray(200 << 20)  # 200 MB of ballast
                work()
                return len(ballast)

            return bloated

        clean = _quick_report()
        monkeypatch.setitem(
            bench_mod.BENCHES,
            "graph_build",
            (description, bloated_factory),
        )
        blown = _quick_report()
        cmp_ = bench_mod.compare_reports(clean, blown)
        assert not cmp_.ok
        # The 200 MB ballast shows up in at least one gated peak.  The
        # traced-alloc metric only joins when the *clean* baseline sits
        # above the 16 MB noise floor, so the guaranteed catch is RSS.
        metrics = {d.metric for d in cmp_.memory_regressions}
        assert metrics and metrics <= set(bench_mod.MEMORY_METRICS)
        assert "peak_rss_bytes" in metrics
