"""Run the docstring examples as tests.

Every ``Examples`` block in a public docstring must actually work; this
keeps the documentation honest.
"""

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro",
    "repro.cluster.kmeans",
    "repro.core.anchor_model",
    "repro.core.model",
    "repro.datasets.container",
    "repro.metrics.accuracy",
    "repro.metrics.hungarian",
    "repro.metrics.purity",
    "repro.metrics.silhouette",
    "repro.core.incomplete",
    "repro.core.out_of_sample",
    "repro.evaluation.ascii_plots",
    "repro.observability.health",
    "repro.observability.memory",
    "repro.observability.metrics",
    "repro.observability.trace",
    "repro.pipeline.cache",
    "repro.pipeline.parallel",
    "repro.robust.faults",
    "repro.robust.policy",
    "repro.streaming.model",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_docstring_examples(name):
    module = importlib.import_module(name)
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{name} has no doctests"
    assert result.failed == 0, f"{name} doctest failures"
