"""Tests for repro.metrics.silhouette."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.silhouette import silhouette_samples, silhouette_score


class TestSilhouetteSamples:
    def test_well_separated_near_one(self):
        x = np.vstack([np.zeros((10, 2)), np.full((10, 2), 50.0)])
        labels = np.repeat([0, 1], 10)
        s = silhouette_samples(x, labels)
        assert s.min() > 0.9

    def test_wrong_assignment_negative(self):
        x = np.vstack([np.zeros((10, 2)), np.full((10, 2), 50.0)])
        labels = np.repeat([0, 1], 10)
        wrong = labels.copy()
        wrong[0] = 1  # a point at the origin assigned to the far cluster
        s = silhouette_samples(x, wrong)
        assert s[0] < 0

    def test_matches_manual_small_case(self):
        x = np.array([[0.0], [1.0], [10.0], [11.0]])
        labels = np.array([0, 0, 1, 1])
        s = silhouette_samples(x, labels)
        # Point 0: a = 1, b = mean(10, 11) = 10.5 -> s = 9.5 / 10.5.
        assert s[0] == pytest.approx(9.5 / 10.5)

    def test_singleton_scores_zero(self):
        x = np.array([[0.0], [10.0], [11.0]])
        labels = np.array([0, 1, 1])
        s = silhouette_samples(x, labels)
        assert s[0] == 0.0

    def test_precomputed_matches_features(self):
        from repro.graph.distance import pairwise_sq_euclidean

        rng = np.random.default_rng(0)
        x = rng.normal(size=(20, 3))
        labels = rng.integers(0, 3, size=20)
        labels[:3] = [0, 1, 2]
        d = np.sqrt(pairwise_sq_euclidean(x))
        np.testing.assert_allclose(
            silhouette_samples(x, labels),
            silhouette_samples(d, labels, precomputed=True),
            atol=1e-10,
        )

    def test_matches_sklearn_formula_bruteforce(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(15, 2))
        labels = rng.integers(0, 3, size=15)
        labels[:3] = [0, 1, 2]
        s = silhouette_samples(x, labels)
        # Brute-force recomputation.
        d = np.sqrt(((x[:, None, :] - x[None, :, :]) ** 2).sum(-1))
        for i in range(15):
            own = labels == labels[i]
            a = d[i, own & (np.arange(15) != i)].mean() if own.sum() > 1 else 0.0
            bs = [
                d[i, labels == c].mean()
                for c in np.unique(labels)
                if c != labels[i]
            ]
            b = min(bs)
            expected = 0.0 if own.sum() == 1 else (b - a) / max(a, b)
            assert s[i] == pytest.approx(expected, abs=1e-10)

    def test_single_cluster_rejected(self):
        with pytest.raises(ValidationError, match="at least 2"):
            silhouette_samples(np.zeros((4, 2)), np.zeros(4, dtype=int))


class TestSilhouetteScore:
    def test_range(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(30, 4))
        labels = rng.integers(0, 3, size=30)
        labels[:3] = [0, 1, 2]
        assert -1.0 <= silhouette_score(x, labels) <= 1.0

    def test_better_clustering_higher_score(self):
        x = np.vstack([np.zeros((10, 2)), np.full((10, 2), 10.0)])
        good = np.repeat([0, 1], 10)
        rng = np.random.default_rng(3)
        bad = rng.integers(0, 2, size=20)
        bad[:2] = [0, 1]
        assert silhouette_score(x, good) > silhouette_score(x, bad)
