"""Tests for repro.core.two_stage, graph_builder, objective, and tuning."""

import numpy as np
import pytest

from repro.core.graph_builder import (
    build_laplacians,
    build_multiview_affinities,
    resolve_view_kind,
)
from repro.core.objective import spectral_costs, umsc_objective
from repro.core.tuning import (
    DEFAULT_GRID,
    RECOMMENDED,
    UMSCParams,
    recommended_params,
    recommended_umsc,
)
from repro.core.two_stage import TwoStageMVSC
from repro.exceptions import ValidationError
from repro.metrics import clustering_accuracy


class TestGraphBuilder:
    def test_one_affinity_per_view(self, small_dataset):
        affs = build_multiview_affinities(small_dataset.views)
        assert len(affs) == small_dataset.n_views
        for w in affs:
            assert w.shape == (90, 90)
            np.testing.assert_allclose(w, w.T, atol=1e-10)

    def test_auto_kind_resolution(self):
        dense = np.random.default_rng(0).normal(size=(10, 4))
        sparse = np.zeros((10, 100))
        sparse[0, 0] = 1.0
        assert resolve_view_kind(dense, "auto") == "self_tuning"
        assert resolve_view_kind(sparse, "auto") == "cosine"
        assert resolve_view_kind(dense, "gaussian") == "gaussian"

    def test_laplacians_psd(self, affinity_pair):
        from repro.linalg.checks import is_psd

        for lap in build_laplacians(affinity_pair):
            assert is_psd(lap)


class TestObjective:
    def test_spectral_costs_nonnegative(self, affinity_pair):
        laps = build_laplacians(affinity_pair)
        rng = np.random.default_rng(0)
        f, _ = np.linalg.qr(rng.normal(size=(90, 3)))
        h = spectral_costs(laps, f)
        assert h.shape == (2,)
        assert np.all(h >= 0)

    def test_umsc_objective_components(self):
        n, c = 12, 3
        rng = np.random.default_rng(1)
        f, _ = np.linalg.qr(rng.normal(size=(n, c)))
        r = np.eye(c)
        g = f.copy()  # zero residual
        lap = np.eye(n)
        # tr(F^T F) = c; residual = 0.
        assert umsc_objective(lap, f, r, g, lam=5.0) == pytest.approx(c)

    def test_lam_scales_residual(self):
        n, c = 10, 2
        rng = np.random.default_rng(2)
        f, _ = np.linalg.qr(rng.normal(size=(n, c)))
        g = np.roll(f, 1, axis=0)
        lap = np.zeros((n, n))
        base = umsc_objective(lap, f, np.eye(c), g, lam=1.0)
        doubled = umsc_objective(lap, f, np.eye(c), g, lam=2.0)
        assert doubled == pytest.approx(2 * base)


class TestTwoStage:
    def test_recovers_easy_clusters(self, small_dataset):
        labels = TwoStageMVSC(3, random_state=0).fit_predict(small_dataset.views)
        assert clustering_accuracy(small_dataset.labels, labels) > 0.95

    def test_fit_affinities(self, affinity_pair, small_dataset):
        labels = TwoStageMVSC(3, random_state=0).fit_affinities(affinity_pair)
        assert clustering_accuracy(small_dataset.labels, labels) > 0.9

    def test_embed_orthonormal(self, affinity_pair):
        f = TwoStageMVSC(3, random_state=0).embed(affinity_pair)
        np.testing.assert_allclose(f.T @ f, np.eye(3), atol=1e-8)

    def test_validation(self):
        with pytest.raises(ValidationError):
            TwoStageMVSC(2, n_init=0)
        with pytest.raises(ValidationError, match="non-empty"):
            TwoStageMVSC(2).fit_affinities([])


class TestTuning:
    def test_recommended_covers_all_benchmarks(self):
        from repro.datasets import available_benchmarks

        for name in available_benchmarks():
            assert name in RECOMMENDED

    def test_unknown_dataset_falls_back(self):
        assert recommended_params("mystery") == UMSCParams()
        assert recommended_params(None) == UMSCParams()

    def test_recommended_umsc_builds(self):
        model = recommended_umsc(4, dataset_name="msrcv1", random_state=0)
        assert model.config.n_clusters == 4

    def test_grid_has_core_axes(self):
        assert set(DEFAULT_GRID) == {"lam", "consensus", "n_neighbors"}

    def test_params_build_valid_model(self, small_dataset):
        model = UMSCParams(lam=0.5, gamma=2.5, n_neighbors=6).build(
            3, random_state=0
        )
        result = model.fit(small_dataset.views)
        assert clustering_accuracy(small_dataset.labels, result.labels) > 0.9
