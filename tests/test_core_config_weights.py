"""Tests for repro.core.config and repro.core.weights."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import UMSCConfig
from repro.core.weights import update_view_weights, weight_exponents
from repro.exceptions import ValidationError


class TestUMSCConfig:
    def test_defaults_valid(self):
        cfg = UMSCConfig(n_clusters=3)
        assert cfg.lam == 1.0
        assert cfg.weighting == "exponential"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_clusters": 0},
            {"n_clusters": 3, "lam": -1.0},
            {"n_clusters": 3, "gamma": 1.0},
            {"n_clusters": 3, "weighting": "magic"},
            {"n_clusters": 3, "graph": "bogus"},
            {"n_clusters": 3, "n_neighbors": 0},
            {"n_clusters": 3, "max_iter": 0},
            {"n_clusters": 3, "tol": 0.0},
            {"n_clusters": 3, "gpi_max_iter": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            UMSCConfig(**kwargs)

    def test_gamma_only_checked_for_exponential(self):
        cfg = UMSCConfig(n_clusters=2, weighting="uniform", gamma=0.5)
        assert cfg.gamma == 0.5

    def test_frozen(self):
        cfg = UMSCConfig(n_clusters=2)
        with pytest.raises(AttributeError):
            cfg.lam = 5.0


class TestUpdateViewWeights:
    def test_uniform(self):
        w = update_view_weights(np.array([1.0, 5.0, 9.0]), mode="uniform")
        np.testing.assert_allclose(w, 1 / 3)

    def test_exponential_prefers_cheap_views(self):
        w = update_view_weights(
            np.array([1.0, 4.0]), mode="exponential", gamma=2.0
        )
        assert w[0] > w[1]
        # gamma=2 -> w_v proportional to 1/h_v.
        np.testing.assert_allclose(w, [0.8, 0.2], atol=1e-10)

    def test_exponential_sums_to_one(self):
        w = update_view_weights(
            np.array([0.3, 1.7, 0.9, 2.2]), mode="exponential", gamma=3.0
        )
        assert w.sum() == pytest.approx(1.0)
        assert np.all(w > 0)

    def test_large_gamma_approaches_uniform(self):
        h = np.array([1.0, 3.0, 7.0])
        w = update_view_weights(h, mode="exponential", gamma=100.0)
        np.testing.assert_allclose(w, 1 / 3, atol=0.02)

    def test_parameter_free_formula(self):
        h = np.array([4.0, 16.0])
        w = update_view_weights(h, mode="parameter_free")
        np.testing.assert_allclose(w, [1 / 4, 1 / 8])

    def test_zero_cost_view_handled(self):
        w = update_view_weights(
            np.array([0.0, 1.0]), mode="exponential", gamma=2.0
        )
        assert np.isfinite(w).all()
        assert w[0] > w[1]

    def test_validation(self):
        with pytest.raises(ValidationError):
            update_view_weights(np.array([]), mode="uniform")
        with pytest.raises(ValidationError):
            update_view_weights(np.array([-1.0]), mode="uniform")
        with pytest.raises(ValidationError):
            update_view_weights(np.array([1.0]), mode="exponential", gamma=0.5)
        with pytest.raises(ValidationError):
            update_view_weights(np.array([1.0]), mode="nope")

    @settings(deadline=None, max_examples=40)
    @given(
        st.lists(st.floats(1e-6, 1e6), min_size=1, max_size=8),
        st.floats(1.1, 10.0),
    )
    def test_property_exponential_optimality(self, h, gamma):
        # The closed form must minimize sum w^gamma h over the simplex:
        # compare against random simplex points.
        h = np.array(h)
        w = update_view_weights(h, mode="exponential", gamma=gamma)
        value = np.dot(w**gamma, h)
        rng = np.random.default_rng(0)
        for _ in range(10):
            p = rng.dirichlet(np.ones(h.size))
            assert value <= np.dot(p**gamma, h) + 1e-6 * abs(value)


class TestWeightExponents:
    def test_exponential_raises_to_gamma(self):
        w = np.array([0.5, 0.5])
        np.testing.assert_allclose(
            weight_exponents(w, mode="exponential", gamma=3.0), [0.125, 0.125]
        )

    def test_other_modes_identity(self):
        w = np.array([0.2, 0.8])
        np.testing.assert_allclose(weight_exponents(w, mode="uniform"), w)
        np.testing.assert_allclose(weight_exponents(w, mode="parameter_free"), w)

    def test_unknown_mode(self):
        with pytest.raises(ValidationError):
            weight_exponents(np.array([1.0]), mode="bad")
