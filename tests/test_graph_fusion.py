"""Tests for repro.graph.fusion."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph.fusion import fuse_affinities, fuse_laplacians


def _affinity(n, seed):
    rng = np.random.default_rng(seed)
    w = np.abs(rng.normal(size=(n, n)))
    w = (w + w.T) / 2.0
    np.fill_diagonal(w, 0.0)
    return w


class TestFuseAffinities:
    def test_uniform_default_is_mean(self):
        mats = [_affinity(5, s) for s in range(3)]
        fused = fuse_affinities(mats)
        np.testing.assert_allclose(fused, np.mean(mats, axis=0), atol=1e-12)

    def test_weights_renormalized(self):
        mats = [_affinity(4, 0), _affinity(4, 1)]
        a = fuse_affinities(mats, [2.0, 2.0])
        b = fuse_affinities(mats, [0.5, 0.5])
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_one_hot_weight_selects_view(self):
        mats = [_affinity(4, 0), _affinity(4, 1)]
        fused = fuse_affinities(mats, [0.0, 1.0])
        np.testing.assert_allclose(fused, mats[1], atol=1e-12)

    def test_weight_shape_checked(self):
        with pytest.raises(ValidationError, match="shape"):
            fuse_affinities([_affinity(3, 0)], [0.5, 0.5])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            fuse_affinities([_affinity(3, 0), _affinity(3, 1)], [-1.0, 2.0])

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValidationError, match="zero"):
            fuse_affinities([_affinity(3, 0)], [0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            fuse_affinities([])

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="size"):
            fuse_affinities([_affinity(3, 0), _affinity(4, 1)])


class TestFuseLaplacians:
    def test_weights_not_renormalized(self):
        mats = [_affinity(4, 0), _affinity(4, 1)]
        doubled = fuse_laplacians(mats, [2.0, 2.0])
        single = fuse_laplacians(mats, [1.0, 1.0])
        np.testing.assert_allclose(doubled, 2.0 * single, atol=1e-12)

    def test_output_symmetric(self):
        fused = fuse_laplacians([_affinity(6, 2), _affinity(6, 3)], [0.3, 0.7])
        np.testing.assert_allclose(fused, fused.T, atol=1e-12)
