"""Tests for repro.metrics.hungarian (validated against scipy)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays
from scipy.optimize import linear_sum_assignment

from repro.exceptions import ValidationError
from repro.metrics.hungarian import assignment_cost, hungarian


class TestHungarianCorrectness:
    def test_known_2x2(self):
        rows, cols = hungarian(np.array([[4.0, 1.0], [2.0, 0.0]]))
        assert list(zip(rows.tolist(), cols.tolist())) == [(0, 1), (1, 0)]

    def test_identity_cost(self):
        c = np.ones((3, 3)) - np.eye(3)
        rows, cols = hungarian(c)
        np.testing.assert_array_equal(rows, cols)

    def test_matches_bruteforce_square(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            n = int(rng.integers(1, 6))
            cost = rng.normal(size=(n, n))
            rows, cols = hungarian(cost)
            best = min(
                sum(cost[i, p[i]] for i in range(n))
                for p in itertools.permutations(range(n))
            )
            assert assignment_cost(cost, rows, cols) == pytest.approx(best)

    def test_rectangular_wide(self):
        rng = np.random.default_rng(1)
        cost = rng.normal(size=(3, 7))
        rows, cols = hungarian(cost)
        sr, sc = linear_sum_assignment(cost)
        assert assignment_cost(cost, rows, cols) == pytest.approx(
            cost[sr, sc].sum()
        )
        assert len(rows) == 3

    def test_rectangular_tall(self):
        rng = np.random.default_rng(2)
        cost = rng.normal(size=(7, 3))
        rows, cols = hungarian(cost)
        sr, sc = linear_sum_assignment(cost)
        assert assignment_cost(cost, rows, cols) == pytest.approx(
            cost[sr, sc].sum()
        )
        assert len(cols) == 3
        assert len(set(rows.tolist())) == 3

    def test_assignment_is_injective(self):
        rng = np.random.default_rng(3)
        cost = rng.normal(size=(6, 6))
        rows, cols = hungarian(cost)
        assert len(set(rows.tolist())) == 6
        assert len(set(cols.tolist())) == 6

    def test_row_ind_sorted(self):
        rng = np.random.default_rng(4)
        rows, _ = hungarian(rng.normal(size=(5, 5)))
        assert np.all(np.diff(rows) > 0)

    def test_nonfinite_rejected(self):
        with pytest.raises(ValidationError, match="NaN or Inf"):
            hungarian(np.array([[np.inf, 1.0], [1.0, 2.0]]))

    def test_single_cell(self):
        rows, cols = hungarian(np.array([[3.0]]))
        assert rows.tolist() == [0] and cols.tolist() == [0]

    @settings(deadline=None, max_examples=60)
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 7), st.integers(1, 7)),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    def test_property_matches_scipy(self, cost):
        rows, cols = hungarian(cost)
        sr, sc = linear_sum_assignment(cost)
        assert assignment_cost(cost, rows, cols) == pytest.approx(
            cost[sr, sc].sum(), abs=1e-7
        )
