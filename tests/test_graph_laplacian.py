"""Tests for repro.graph.laplacian."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph.laplacian import degree_vector, laplacian, normalized_adjacency
from repro.linalg.checks import is_psd


def _random_affinity(n=12, seed=0):
    rng = np.random.default_rng(seed)
    w = np.abs(rng.normal(size=(n, n)))
    w = (w + w.T) / 2.0
    np.fill_diagonal(w, 0.0)
    return w


class TestDegreeVector:
    def test_row_sums(self):
        w = _random_affinity()
        np.testing.assert_allclose(degree_vector(w), w.sum(axis=1))

    def test_negative_rejected(self):
        w = -np.ones((3, 3))
        np.fill_diagonal(w, 0.0)
        with pytest.raises(ValidationError, match="non-negative"):
            degree_vector(w)


class TestNormalizedAdjacency:
    def test_spectrum_bounded_by_one(self):
        a = normalized_adjacency(_random_affinity(seed=1))
        values = np.linalg.eigvalsh(a)
        assert values.max() <= 1.0 + 1e-10
        assert values.min() >= -1.0 - 1e-10

    def test_isolated_vertex_row_zero(self):
        w = np.zeros((3, 3))
        w[0, 1] = w[1, 0] = 1.0
        a = normalized_adjacency(w)
        np.testing.assert_allclose(a[2], 0.0)


class TestLaplacian:
    def test_unnormalized_row_sums_zero(self):
        lap = laplacian(_random_affinity(), normalization="unnormalized")
        np.testing.assert_allclose(lap.sum(axis=1), 0.0, atol=1e-10)

    def test_unnormalized_psd(self):
        assert is_psd(laplacian(_random_affinity(seed=2), normalization="unnormalized"))

    def test_symmetric_psd_and_bounded(self):
        lap = laplacian(_random_affinity(seed=3))
        assert is_psd(lap)
        assert np.linalg.eigvalsh(lap).max() <= 2.0 + 1e-10

    def test_symmetric_nullvector_is_sqrt_degree(self):
        w = _random_affinity(seed=4)
        lap = laplacian(w)
        d = np.sqrt(degree_vector(w))
        np.testing.assert_allclose(lap @ d, 0.0, atol=1e-8)

    def test_random_walk_constant_nullvector(self):
        lap = laplacian(_random_affinity(seed=5), normalization="random_walk")
        np.testing.assert_allclose(lap @ np.ones(12), 0.0, atol=1e-10)

    def test_component_count_equals_nullity(self):
        # Two disconnected cliques -> nullity 2.
        w = np.zeros((6, 6))
        w[:3, :3] = 1.0
        w[3:, 3:] = 1.0
        np.fill_diagonal(w, 0.0)
        lap = laplacian(w)
        values = np.linalg.eigvalsh(lap)
        assert np.sum(values < 1e-10) == 2

    def test_unknown_normalization(self):
        with pytest.raises(ValidationError, match="normalization"):
            laplacian(_random_affinity(), normalization="weird")


class TestIsolatedVertices:
    """Zero-degree vertices must be exact null-space directions.

    Regression tests: the normalized Laplacians used to leave a spurious
    1 on an isolated vertex's diagonal (from the ``I`` in ``I - A``),
    breaking the components-equal-nullity identity the spectral embedding
    relies on.
    """

    def _affinity_with_isolated(self):
        w = _random_affinity(n=8, seed=9)
        w[0, :] = 0.0
        w[:, 0] = 0.0  # vertex 0 isolated
        return w

    def test_symmetric_diagonal_zero_on_isolated(self):
        lap = laplacian(self._affinity_with_isolated())
        assert lap[0, 0] == 0.0
        np.testing.assert_allclose(lap[0, :], 0.0)
        np.testing.assert_allclose(lap[:, 0], 0.0)

    def test_random_walk_diagonal_zero_on_isolated(self):
        lap = laplacian(
            self._affinity_with_isolated(), normalization="random_walk"
        )
        assert lap[0, 0] == 0.0
        np.testing.assert_allclose(lap[0, :], 0.0)

    def test_isolated_vertex_is_nullvector(self):
        lap = laplacian(self._affinity_with_isolated())
        e0 = np.zeros(8)
        e0[0] = 1.0
        np.testing.assert_allclose(lap @ e0, 0.0, atol=1e-12)

    def test_nullity_counts_isolated_as_component(self):
        # One connected blob of 7 vertices + 1 isolated vertex = 2
        # components, so the symmetric Laplacian nullity must be 2.
        lap = laplacian(self._affinity_with_isolated())
        values = np.linalg.eigvalsh(lap)
        assert np.sum(values < 1e-10) == 2
        assert is_psd(lap)

    def test_random_walk_nullity_matches_components(self):
        w = np.zeros((6, 6))
        w[1, 2] = w[2, 1] = 1.0
        w[3, 4] = w[4, 3] = 1.0  # vertices 0 and 5 isolated
        lap = laplacian(w, normalization="random_walk")
        values = np.linalg.eigvalsh((lap + lap.T) / 2.0)
        assert np.sum(np.abs(values) < 1e-10) == 4  # 2 edges + 2 isolated


class TestNormalizedAdjacencyLaplacianConsistency:
    def test_identity_minus_adjacency(self):
        w = _random_affinity(seed=8)
        lap = laplacian(w)
        adj = normalized_adjacency(w)
        np.testing.assert_allclose(lap, np.eye(12) - adj, atol=1e-10)

    def test_bipartite_graph_eigenvalue_two(self):
        # A bipartite graph's normalized Laplacian attains eigenvalue 2.
        w = np.zeros((6, 6))
        w[:3, 3:] = 1.0
        w[3:, :3] = 1.0
        values = np.linalg.eigvalsh(laplacian(w))
        assert values.max() == pytest.approx(2.0, abs=1e-10)
