"""Tests for repro.graph.laplacian."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph.laplacian import degree_vector, laplacian, normalized_adjacency
from repro.linalg.checks import is_psd


def _random_affinity(n=12, seed=0):
    rng = np.random.default_rng(seed)
    w = np.abs(rng.normal(size=(n, n)))
    w = (w + w.T) / 2.0
    np.fill_diagonal(w, 0.0)
    return w


class TestDegreeVector:
    def test_row_sums(self):
        w = _random_affinity()
        np.testing.assert_allclose(degree_vector(w), w.sum(axis=1))

    def test_negative_rejected(self):
        w = -np.ones((3, 3))
        np.fill_diagonal(w, 0.0)
        with pytest.raises(ValidationError, match="non-negative"):
            degree_vector(w)


class TestNormalizedAdjacency:
    def test_spectrum_bounded_by_one(self):
        a = normalized_adjacency(_random_affinity(seed=1))
        values = np.linalg.eigvalsh(a)
        assert values.max() <= 1.0 + 1e-10
        assert values.min() >= -1.0 - 1e-10

    def test_isolated_vertex_row_zero(self):
        w = np.zeros((3, 3))
        w[0, 1] = w[1, 0] = 1.0
        a = normalized_adjacency(w)
        np.testing.assert_allclose(a[2], 0.0)


class TestLaplacian:
    def test_unnormalized_row_sums_zero(self):
        lap = laplacian(_random_affinity(), normalization="unnormalized")
        np.testing.assert_allclose(lap.sum(axis=1), 0.0, atol=1e-10)

    def test_unnormalized_psd(self):
        assert is_psd(laplacian(_random_affinity(seed=2), normalization="unnormalized"))

    def test_symmetric_psd_and_bounded(self):
        lap = laplacian(_random_affinity(seed=3))
        assert is_psd(lap)
        assert np.linalg.eigvalsh(lap).max() <= 2.0 + 1e-10

    def test_symmetric_nullvector_is_sqrt_degree(self):
        w = _random_affinity(seed=4)
        lap = laplacian(w)
        d = np.sqrt(degree_vector(w))
        np.testing.assert_allclose(lap @ d, 0.0, atol=1e-8)

    def test_random_walk_constant_nullvector(self):
        lap = laplacian(_random_affinity(seed=5), normalization="random_walk")
        np.testing.assert_allclose(lap @ np.ones(12), 0.0, atol=1e-10)

    def test_component_count_equals_nullity(self):
        # Two disconnected cliques -> nullity 2.
        w = np.zeros((6, 6))
        w[:3, :3] = 1.0
        w[3:, 3:] = 1.0
        np.fill_diagonal(w, 0.0)
        lap = laplacian(w)
        values = np.linalg.eigvalsh(lap)
        assert np.sum(values < 1e-10) == 2

    def test_unknown_normalization(self):
        with pytest.raises(ValidationError, match="normalization"):
            laplacian(_random_affinity(), normalization="weird")


class TestNormalizedAdjacencyLaplacianConsistency:
    def test_identity_minus_adjacency(self):
        w = _random_affinity(seed=8)
        lap = laplacian(w)
        adj = normalized_adjacency(w)
        np.testing.assert_allclose(lap, np.eye(12) - adj, atol=1e-10)

    def test_bipartite_graph_eigenvalue_two(self):
        # A bipartite graph's normalized Laplacian attains eigenvalue 2.
        w = np.zeros((6, 6))
        w[:3, 3:] = 1.0
        w[3:, :3] = 1.0
        values = np.linalg.eigvalsh(laplacian(w))
        assert values.max() == pytest.approx(2.0, abs=1e-10)
