"""Tests for repro.graph.affinity."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph.affinity import (
    build_view_affinity,
    cosine_affinity,
    gaussian_affinity,
    knn_sparsify,
    self_tuning_affinity,
    symmetrize,
)


def _two_blobs(n_per=15, sep=8.0, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n_per, 3))
    b = rng.normal(size=(n_per, 3)) + sep
    return np.vstack([a, b])


def _assert_valid_affinity(w, n):
    assert w.shape == (n, n)
    np.testing.assert_allclose(w, w.T, atol=1e-10)
    assert np.all(w >= 0)
    np.testing.assert_allclose(np.diag(w), 0.0, atol=1e-12)


class TestSymmetrize:
    def test_average(self):
        w = np.array([[0.0, 2.0], [0.0, 0.0]])
        np.testing.assert_allclose(symmetrize(w), [[0.0, 1.0], [1.0, 0.0]])

    def test_max_min(self):
        w = np.array([[0.0, 2.0], [4.0, 0.0]])
        assert symmetrize(w, mode="max")[0, 1] == 4.0
        assert symmetrize(w, mode="min")[0, 1] == 2.0

    def test_unknown_mode(self):
        with pytest.raises(ValidationError):
            symmetrize(np.zeros((2, 2)), mode="bogus")


class TestGaussianAffinity:
    def test_valid_affinity(self):
        x = _two_blobs()
        _assert_valid_affinity(gaussian_affinity(x), 30)

    def test_block_structure(self):
        x = _two_blobs(sep=20.0)
        w = gaussian_affinity(x, sigma=1.0)
        within = w[:15, :15][~np.eye(15, dtype=bool)].mean()
        across = w[:15, 15:].mean()
        assert within > 100 * max(across, 1e-300)

    def test_sigma_validation(self):
        with pytest.raises(ValidationError, match="sigma"):
            gaussian_affinity(_two_blobs(), sigma=-1.0)

    def test_larger_sigma_larger_weights(self):
        x = _two_blobs()
        w1 = gaussian_affinity(x, sigma=0.5)
        w2 = gaussian_affinity(x, sigma=5.0)
        off = ~np.eye(30, dtype=bool)
        assert np.all(w2[off] >= w1[off] - 1e-12)


class TestSelfTuningAffinity:
    def test_valid_affinity(self):
        _assert_valid_affinity(self_tuning_affinity(_two_blobs()), 30)

    def test_scale_invariance_of_structure(self):
        # Local scaling adapts: multiplying all coordinates by a constant
        # leaves the affinity unchanged.
        x = _two_blobs()
        w1 = self_tuning_affinity(x, k=5)
        w2 = self_tuning_affinity(10.0 * x, k=5)
        np.testing.assert_allclose(w1, w2, atol=1e-10)

    def test_k_clipped_to_n_minus_1(self):
        x = _two_blobs(n_per=3)
        w = self_tuning_affinity(x, k=100)
        _assert_valid_affinity(w, 6)

    def test_too_few_samples(self):
        with pytest.raises(ValidationError):
            self_tuning_affinity(np.zeros((1, 2)))


class TestCosineAffinity:
    def test_valid_and_bounded(self):
        x = np.abs(_two_blobs())
        w = cosine_affinity(x)
        _assert_valid_affinity(w, 30)
        assert np.all(w <= 1.0 + 1e-12)

    def test_parallel_rows_get_max(self):
        x = np.array([[1.0, 1.0], [2.0, 2.0], [1.0, -1.0]])
        w = cosine_affinity(x)
        assert w[0, 1] == pytest.approx(1.0)
        assert w[0, 2] == pytest.approx(0.5)


class TestKnnSparsify:
    def test_sparsity_level(self):
        x = _two_blobs()
        w = gaussian_affinity(x)
        sparse = knn_sparsify(w, 3)
        # Union rule: each row has between k and ~2k nonzeros.
        nnz = np.count_nonzero(sparse, axis=1)
        assert np.all(nnz >= 3)
        assert np.all(nnz <= 30)
        assert np.count_nonzero(sparse) < np.count_nonzero(w)

    def test_mutual_subset_of_union(self):
        w = gaussian_affinity(_two_blobs())
        union = knn_sparsify(w, 4, mutual=False)
        mutual = knn_sparsify(w, 4, mutual=True)
        assert np.all((mutual > 0) <= (union > 0))

    def test_preserves_kept_values(self):
        w = gaussian_affinity(_two_blobs())
        sparse = knn_sparsify(w, 5)
        kept = sparse > 0
        np.testing.assert_allclose(sparse[kept], w[kept])

    def test_k_validation(self):
        with pytest.raises(ValidationError):
            knn_sparsify(np.zeros((4, 4)), 0)


class TestBuildViewAffinity:
    @pytest.mark.parametrize("kind", ["self_tuning", "gaussian", "cosine", "adaptive"])
    def test_all_kinds_valid(self, kind):
        x = np.abs(_two_blobs())
        w = build_view_affinity(x, kind=kind, k=5)
        _assert_valid_affinity(w, 30)

    def test_unknown_kind(self):
        with pytest.raises(ValidationError, match="kind"):
            build_view_affinity(_two_blobs(), kind="nope")

    def test_separates_blobs(self):
        from repro.cluster.spectral import spectral_clustering
        from repro.metrics import clustering_accuracy

        x = _two_blobs(sep=10.0)
        w = build_view_affinity(x, k=8)
        labels = spectral_clustering(w, 2, random_state=0)
        truth = np.repeat([0, 1], 15)
        assert clustering_accuracy(truth, labels) == 1.0


class TestSingleValidation:
    """The hot path validates each input exactly once per public call.

    Before the backend refactor every affinity kernel ran
    ``check_matrix`` on ``x`` and then the distance layer re-validated
    (and re-copied) the same array.  The ``pre_validated`` fast path
    removed the duplicate; these spies pin that it stays removed.
    """

    @pytest.fixture
    def spy(self, monkeypatch):
        """Count ``check_matrix`` calls made on the raw feature matrix."""
        import repro.graph.affinity as affinity_mod
        import repro.graph.distance as distance_mod
        from repro.utils.validation import check_matrix

        calls = []

        def counting_check_matrix(x, name="x", **kwargs):
            calls.append(name)
            return check_matrix(x, name, **kwargs)

        monkeypatch.setattr(
            affinity_mod, "check_matrix", counting_check_matrix
        )
        monkeypatch.setattr(
            distance_mod, "check_matrix", counting_check_matrix
        )
        return calls

    @pytest.mark.parametrize(
        "kernel",
        [
            gaussian_affinity,
            lambda x: self_tuning_affinity(x, k=5),
            cosine_affinity,
        ],
        ids=["gaussian", "self_tuning", "cosine"],
    )
    def test_affinity_kernels_validate_once(self, spy, kernel):
        kernel(_two_blobs())
        assert len(spy) == 1, spy

    def test_distance_functions_validate_once(self, spy):
        from repro.graph.distance import (
            pairwise_cosine_distances,
            pairwise_sq_euclidean,
        )

        x = _two_blobs()
        pairwise_sq_euclidean(x)
        assert len(spy) == 1, spy
        spy.clear()
        pairwise_cosine_distances(x)
        assert len(spy) == 1, spy

    def test_build_view_affinity_validates_data_once(self, spy):
        # knn_sparsify separately validates the *affinity* matrix it is
        # given (a different input); the raw data matrix itself must be
        # checked exactly once.
        build_view_affinity(_two_blobs(), k=5, sparsify=False)
        assert len(spy) == 1, spy

    def test_pre_validated_still_rejects_bad_public_input(self, spy):
        bad = _two_blobs()
        bad[0, 0] = np.nan
        with pytest.raises(ValidationError):
            gaussian_affinity(bad)
        assert len(spy) == 1, spy
