"""Tests for repro.datasets.io (npz round trip)."""

import numpy as np
import pytest

from repro.datasets.io import load_dataset, save_dataset
from repro.datasets.synth import make_multiview_blobs
from repro.exceptions import DatasetError


class TestRoundTrip:
    def test_save_load_identical(self, tmp_path):
        ds = make_multiview_blobs(40, 3, view_dims=(5, 8), random_state=0)
        path = str(tmp_path / "toy.npz")
        save_dataset(ds, path)
        loaded = load_dataset(path)
        assert loaded.name == ds.name
        assert loaded.view_names == ds.view_names
        assert loaded.description == ds.description
        np.testing.assert_array_equal(loaded.labels, ds.labels)
        for a, b in zip(loaded.views, ds.views):
            np.testing.assert_allclose(a, b)

    def test_extension_added(self, tmp_path):
        ds = make_multiview_blobs(20, 2, view_dims=(4,), random_state=1)
        base = str(tmp_path / "noext")
        save_dataset(ds, base)
        loaded = load_dataset(base)  # resolves noext.npz
        assert loaded.n_samples == 20

    def test_view_order_preserved_beyond_ten(self, tmp_path):
        # view_10 must not sort before view_2 (numeric, not lexicographic).
        ds = make_multiview_blobs(
            15, 2, view_dims=tuple(3 + i for i in range(12)), random_state=2
        )
        path = str(tmp_path / "many.npz")
        save_dataset(ds, path)
        loaded = load_dataset(path)
        assert loaded.view_dims == ds.view_dims

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            load_dataset(str(tmp_path / "absent.npz"))

    def test_malformed_archive(self, tmp_path):
        path = str(tmp_path / "bad.npz")
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(DatasetError, match="labels"):
            load_dataset(path)

    def test_archive_without_views(self, tmp_path):
        path = str(tmp_path / "noviews.npz")
        np.savez(path, labels=np.array([0, 1]))
        with pytest.raises(DatasetError, match="views"):
            load_dataset(path)
