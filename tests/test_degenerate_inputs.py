"""Property-based degenerate-input tests: the failure surface is sealed.

The contract under test (see ``docs/robustness.md``): for *any* input a
user can plausibly construct — duplicated rows, constant features, a
single cluster, as many clusters as samples, disconnected k-NN graphs —
``UnifiedMVSC.fit`` either succeeds with valid labels and a fully finite
objective history, or raises a :class:`~repro.exceptions.ReproError`
subclass.  A raw numpy/scipy/ARPACK exception or a silently-NaN objective
is always a bug.

Deterministic spot-checks of the same territory live in
``test_robustness.py``; this module sweeps it with hypothesis, following
the ``test_graph_distance.py`` idiom, plus the shared degenerate fixtures
from ``conftest.py``.
"""

import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.model import UnifiedMVSC
from repro.evaluation.registry import default_method_registry
from repro.evaluation.runner import run_method_once
from repro.exceptions import ConvergenceWarning, ReproError

DEGENERATE_SETTINGS = settings(
    deadline=None,
    max_examples=15,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(autouse=True)
def _silence_convergence():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        yield


def assert_fit_contract(views, n_clusters, **kwargs):
    """Fit must yield valid labels + finite objective, or raise ReproError.

    Returns the result on success and ``None`` when the library refused
    the input through its documented error surface.
    """
    try:
        result = UnifiedMVSC(n_clusters, random_state=0, **kwargs).fit(views)
    except ReproError:
        return None
    n = views[0].shape[0]
    assert result.labels.shape == (n,)
    assert result.labels.dtype.kind == "i"
    assert result.labels.min() >= 0
    assert result.labels.max() < n_clusters
    history = np.asarray(result.objective_history, dtype=float)
    assert np.all(np.isfinite(history)), "silent NaN/Inf objective"
    return result


small_matrix = arrays(
    np.float64,
    st.tuples(st.integers(8, 14), st.integers(2, 4)),
    elements=st.floats(-10, 10, allow_nan=False),
)


class TestDuplicatedRows:
    @DEGENERATE_SETTINGS
    @given(small_matrix)
    def test_appended_duplicates(self, x):
        # Duplicate the first third of the rows verbatim: zero pairwise
        # distances inside the k-NN graph, ties everywhere.
        dup = np.vstack([x, x[: max(1, x.shape[0] // 3)]])
        assert_fit_contract([dup], 2)

    @DEGENERATE_SETTINGS
    @given(small_matrix, st.integers(0, 7))
    def test_one_row_repeated_many_times(self, x, row):
        x = x.copy()
        x[x.shape[0] // 2 :] = x[row % x.shape[0]]
        assert_fit_contract([x], 2)

    def test_duplicated_dataset_fixture(self, duplicated_dataset):
        result = assert_fit_contract(duplicated_dataset.views, 2)
        assert result is not None  # this one must actually succeed


class TestConstantFeatures:
    @DEGENERATE_SETTINGS
    @given(small_matrix, st.floats(-5, 5, allow_nan=False))
    def test_constant_column(self, x, value):
        x = x.copy()
        x[:, 0] = value
        assert_fit_contract([x], 2)

    @DEGENERATE_SETTINGS
    @given(
        st.integers(8, 14),
        st.integers(2, 4),
        st.floats(-5, 5, allow_nan=False),
    )
    def test_entirely_constant_view(self, n, d, value):
        # All rows identical: every pairwise distance is zero, the
        # affinity is degenerate, and the Laplacian null space is the
        # whole graph.  Refusing via ReproError is acceptable; crashing
        # with a LinAlgError is not.
        x = np.full((n, d), value)
        assert_fit_contract([x], 2)

    def test_single_informative_fixture(self, single_informative_dataset):
        result = assert_fit_contract(single_informative_dataset.views, 3)
        assert result is not None


class TestClusterCountExtremes:
    @DEGENERATE_SETTINGS
    @given(small_matrix)
    def test_single_cluster(self, x):
        result = assert_fit_contract([x], 1)
        if result is not None:
            assert set(result.labels.tolist()) == {0}

    @DEGENERATE_SETTINGS
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(5, 8), st.integers(2, 3)),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    def test_n_clusters_equals_n_samples(self, x):
        assert_fit_contract([x], x.shape[0], n_neighbors=3)

    @DEGENERATE_SETTINGS
    @given(small_matrix, st.integers(2, 6))
    def test_arbitrary_cluster_counts(self, x, k):
        assert_fit_contract([x], k, n_neighbors=4)


class TestDisconnectedGraphs:
    @DEGENERATE_SETTINGS
    @given(st.floats(50, 1e6), st.integers(4, 7))
    def test_far_apart_blobs_disconnect_knn(self, separation, blob):
        # Two blobs further apart than any within-blob distance with a
        # k-NN parameter smaller than either blob: the graph splits into
        # (at least) two components.
        rng = np.random.default_rng(17)
        x = np.vstack(
            [
                rng.normal(size=(blob, 3)),
                rng.normal(size=(blob, 3)) + separation,
            ]
        )
        result = assert_fit_contract([x], 2, n_neighbors=2)
        if result is not None:
            # Components this clean should actually be separated.
            first, second = result.labels[:blob], result.labels[blob:]
            assert len(set(first.tolist())) == 1
            assert len(set(second.tolist())) == 1
            assert first[0] != second[0]

    def test_isolated_vertex_in_affinity(self):
        w = np.zeros((10, 10))
        w[:5, :5] = 1.0
        w[5:, 5:] = 1.0
        np.fill_diagonal(w, 0.0)
        w[0, :] = 0.0
        w[:, 0] = 0.0  # vertex 0 fully isolated
        try:
            result = UnifiedMVSC(2, random_state=0).fit_affinities([w])
        except ReproError:
            return
        assert result.labels.shape == (10,)
        assert np.all(np.isfinite(result.embedding))


class TestSharedDegenerateFixtures:
    def test_fit_contract_on_every_fixture(self, degenerate_dataset):
        result = assert_fit_contract(
            degenerate_dataset.views, degenerate_dataset.n_clusters
        )
        assert result is not None
        # Diagnostics (including the recovery log) are always attached.
        assert result.diagnostics is not None
        assert isinstance(result.diagnostics.recoveries, tuple)

    def test_runner_contract_on_outliers(self, outlier_dataset):
        # The experiment runner shares the sealed failure surface: a
        # degenerate dataset yields metrics or a ReproError, nothing else.
        spec = default_method_registry()["UMSC"]
        try:
            metrics, seconds = run_method_once(spec, outlier_dataset, 0)
        except ReproError:
            return
        assert set(metrics) == {"acc", "nmi", "purity"}
        assert all(np.isfinite(v) for v in metrics.values())
