"""Tests for repro.pipeline — computation cache and parallel map.

The contract under test: caching and parallelism are *transparent*.
Every result produced through the cache (memory or disk, serial or
parallel) must be bit-identical to the direct computation, and the
hit/miss accounting must be exact.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse

from repro import UnifiedMVSC
from repro.core.graph_builder import build_laplacians, build_multiview_affinities
from repro.evaluation.sweeps import grid_sweep
from repro.exceptions import ValidationError
from repro.observability import Trace, use_trace
from repro.pipeline import (
    ComputationCache,
    cache_key,
    clear_disk_store,
    current_cache,
    disk_store_stats,
    memoized_parallel,
    parallel_map,
    resolve_jobs,
    use_cache,
    use_jobs,
)


class TestCacheKey:
    def test_deterministic(self):
        x = np.arange(12.0).reshape(3, 4)
        assert cache_key("ns", (x,), {"k": 5}) == cache_key("ns", (x,), {"k": 5})

    def test_sensitive_to_data(self):
        x = np.arange(12.0).reshape(3, 4)
        y = x.copy()
        y[0, 0] += 1e-12
        assert cache_key("ns", (x,)) != cache_key("ns", (y,))

    def test_sensitive_to_params(self):
        x = np.eye(3)
        assert cache_key("ns", (x,), {"k": 5}) != cache_key("ns", (x,), {"k": 6})
        assert cache_key("ns", (x,), {"kind": "rbf"}) != cache_key(
            "ns", (x,), {"kind": "cosine"}
        )

    def test_sensitive_to_namespace(self):
        x = np.eye(3)
        assert cache_key("affinity", (x,)) != cache_key("laplacian", (x,))

    def test_sensitive_to_dtype_and_shape(self):
        a = np.zeros(4, dtype=np.float64)
        b = np.zeros(4, dtype=np.float32)
        assert cache_key("ns", (a,)) != cache_key("ns", (b,))
        assert cache_key("ns", (a,)) != cache_key("ns", (a.reshape(2, 2),))

    def test_param_order_irrelevant(self):
        x = np.eye(2)
        assert cache_key("ns", (x,), {"a": 1, "b": 2}) == cache_key(
            "ns", (x,), {"b": 2, "a": 1}
        )

    def test_sparse_arrays_hashable(self):
        sp = scipy.sparse.random(8, 8, density=0.3, random_state=0, format="csr")
        assert cache_key("ns", (sp,)) == cache_key("ns", (sp.copy(),))
        dense_key = cache_key("ns", (np.asarray(sp.todense()),))
        assert cache_key("ns", (sp,)) != dense_key


class TestComputationCache:
    def test_hit_miss_accounting(self):
        cache = ComputationCache()
        x = np.eye(4)
        calls = []
        for _ in range(3):
            cache.memoize("demo", (x,), {"k": 1}, lambda: (calls.append(1), x * 2)[1:])
        s = cache.stats()
        assert (s.hits, s.misses) == (2, 1)
        assert len(calls) == 1
        assert s.by_namespace["demo"] == {"hits": 2, "misses": 1}
        assert s.hit_rate == pytest.approx(2 / 3)

    def test_fetch_returns_copy(self):
        cache = ComputationCache()
        x = np.arange(6.0)
        key = cache_key("ns", (x,))
        cache.insert(key, (x,))
        got = cache.fetch(key)[0]
        got[:] = -1.0
        again = cache.fetch(key)[0]
        np.testing.assert_array_equal(again, np.arange(6.0))

    def test_insert_copies_value(self):
        cache = ComputationCache()
        x = np.arange(6.0)
        key = cache_key("ns", (x,))
        cache.insert(key, (x,))
        x[:] = -1.0
        np.testing.assert_array_equal(cache.fetch(key)[0], np.arange(6.0))

    def test_eviction_by_items(self):
        cache = ComputationCache(max_items=2)
        arrays = [np.full(3, float(i)) for i in range(4)]
        keys = [cache_key("ns", (a,)) for a in arrays]
        for k, a in zip(keys, arrays):
            cache.insert(k, (a,))
        s = cache.stats()
        assert s.memory_entries == 2
        assert s.evictions >= 2
        assert cache.fetch(keys[0]) is None  # oldest evicted
        assert cache.fetch(keys[3]) is not None  # newest kept

    def test_eviction_by_bytes(self):
        one_kb = np.zeros(128)  # 1024 bytes of float64
        cache = ComputationCache(max_bytes=3000)
        for i in range(4):
            cache.insert(cache_key("ns", (one_kb + i,)), (one_kb + i,))
        s = cache.stats()
        assert s.memory_bytes <= 3000
        assert s.evictions >= 1

    def test_lru_order(self):
        cache = ComputationCache(max_items=2)
        a, b, c = (np.full(2, float(i)) for i in range(3))
        ka, kb, kc = (cache_key("ns", (v,)) for v in (a, b, c))
        cache.insert(ka, (a,))
        cache.insert(kb, (b,))
        cache.fetch(ka)  # touch a so b becomes least-recently-used
        cache.insert(kc, (c,))
        assert cache.fetch(ka) is not None
        assert cache.fetch(kb) is None

    def test_clear(self):
        cache = ComputationCache()
        cache.insert(cache_key("ns", (np.eye(2),)), (np.eye(2),))
        cache.clear()
        s = cache.stats()
        assert s.memory_entries == 0 and s.memory_bytes == 0

    def test_invalid_limits(self):
        with pytest.raises(ValidationError):
            ComputationCache(max_items=0)
        with pytest.raises(ValidationError):
            ComputationCache(max_bytes=0)

    def test_trace_counters_mirrored(self):
        cache = ComputationCache()
        x = np.eye(3)
        trace = Trace("test")
        with use_trace(trace):
            cache.memoize("aff", (x,), {}, lambda: (x,))
            cache.memoize("aff", (x,), {}, lambda: (x,))
        assert trace.metrics.counter("cache.miss").value == 1.0
        assert trace.metrics.counter("cache.hit").value == 1.0
        assert trace.metrics.counter("cache.hit.aff").value == 1.0
        assert any(s.name == "graph_cache" for s in trace.spans)


class TestDiskStore:
    def test_round_trip_dense(self, tmp_path):
        d = str(tmp_path / "store")
        x = np.random.default_rng(0).normal(size=(7, 5))
        key = cache_key("ns", (x,))
        ComputationCache(directory=d).insert(key, (x, x * 2))
        # A fresh cache (fresh process stand-in) finds it on disk.
        got = ComputationCache(directory=d).fetch(key)
        assert got is not None
        np.testing.assert_array_equal(got[0], x)
        np.testing.assert_array_equal(got[1], x * 2)

    def test_round_trip_sparse(self, tmp_path):
        d = str(tmp_path / "store")
        sp = scipy.sparse.random(
            9, 9, density=0.4, random_state=1, format="csr"
        )
        key = cache_key("ns", (sp,))
        ComputationCache(directory=d).insert(key, (sp,))
        got = ComputationCache(directory=d).fetch(key)[0]
        assert scipy.sparse.issparse(got)
        np.testing.assert_array_equal(
            np.asarray(got.todense()), np.asarray(sp.todense())
        )

    def test_stats_and_clear(self, tmp_path):
        d = str(tmp_path / "store")
        cache = ComputationCache(directory=d)
        for i in range(3):
            cache.insert(cache_key("ns", (np.full(4, float(i)),)), (np.eye(2),))
        entries, nbytes = disk_store_stats(d)
        assert entries == 3 and nbytes > 0
        assert clear_disk_store(d) == 3
        assert disk_store_stats(d) == (0, 0)

    def test_missing_directory(self, tmp_path):
        missing = str(tmp_path / "nope")
        assert disk_store_stats(missing) == (0, 0)
        assert clear_disk_store(missing) == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        d = tmp_path / "store"
        d.mkdir()
        key = cache_key("ns", (np.eye(2),))
        (d / f"{key}.npz").write_bytes(b"not an npz file")
        assert ComputationCache(directory=str(d)).fetch(key) is None


class TestActivation:
    def test_default_inactive(self):
        assert current_cache() is None

    def test_use_cache_scopes(self):
        cache = ComputationCache()
        with use_cache(cache):
            assert current_cache() is cache
            with use_cache(ComputationCache()) as inner:
                assert current_cache() is inner
            assert current_cache() is cache
        assert current_cache() is None


class TestParallel:
    def test_resolve_jobs(self):
        assert resolve_jobs() == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(-1) >= 1
        assert resolve_jobs(8, n_tasks=2) == 2
        with use_jobs(4):
            assert resolve_jobs() == 4
        with pytest.raises(ValidationError):
            resolve_jobs(0)
        with pytest.raises(ValidationError):
            resolve_jobs(-2)

    def test_parallel_map_order_preserved(self):
        items = list(range(20))
        assert parallel_map(lambda i: i * i, items, n_jobs=4) == [
            i * i for i in items
        ]
        assert parallel_map(lambda i: i * i, items, n_jobs=1) == [
            i * i for i in items
        ]

    def test_memoized_parallel_counts_once_per_item(self):
        cache = ComputationCache()
        xs = [np.full((4, 4), float(i)) for i in range(3)]
        with use_cache(cache):
            first = memoized_parallel(
                xs, lambda x: x * 2, namespace="ns",
                key_arrays=lambda x: (x,), n_jobs=2,
            )
            second = memoized_parallel(
                xs, lambda x: x * 2, namespace="ns",
                key_arrays=lambda x: (x,), n_jobs=2,
            )
        s = cache.stats()
        assert (s.hits, s.misses) == (3, 3)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_memoized_parallel_without_cache(self):
        out = memoized_parallel(
            [np.eye(2), np.eye(3)], lambda x: x + 1, namespace="ns",
            key_arrays=lambda x: (x,), n_jobs=2,
        )
        np.testing.assert_array_equal(out[0], np.eye(2) + 1)
        np.testing.assert_array_equal(out[1], np.eye(3) + 1)


class TestTransparency:
    """Caching/parallelism never change any numbers."""

    def test_affinities_parallel_matches_serial(self, small_dataset):
        serial = build_multiview_affinities(small_dataset.views, n_neighbors=8)
        parallel = build_multiview_affinities(
            small_dataset.views, n_neighbors=8, n_jobs=2
        )
        for a, b in zip(serial, parallel):
            np.testing.assert_array_equal(a, b)

    def test_affinities_cached_match_uncached(self, small_dataset):
        uncached = build_multiview_affinities(small_dataset.views, n_neighbors=8)
        cache = ComputationCache()
        with use_cache(cache):
            cold = build_multiview_affinities(small_dataset.views, n_neighbors=8)
            warm = build_multiview_affinities(small_dataset.views, n_neighbors=8)
        for a, b, c in zip(uncached, cold, warm):
            np.testing.assert_array_equal(a, b)
            np.testing.assert_array_equal(a, c)
        s = cache.stats()
        n_views = len(small_dataset.views)
        assert (s.hits, s.misses) == (n_views, n_views)

    def test_laplacians_cached_match_uncached(self, affinity_pair):
        uncached = build_laplacians(affinity_pair)
        with use_cache(ComputationCache()):
            cached = build_laplacians(affinity_pair)
        for a, b in zip(uncached, cached):
            np.testing.assert_array_equal(a, b)

    def test_umsc_fit_bit_identical(self, small_dataset):
        baseline = UnifiedMVSC(
            small_dataset.n_clusters, random_state=0
        ).fit(small_dataset.views)
        with use_cache(ComputationCache()):
            cached = UnifiedMVSC(
                small_dataset.n_clusters, random_state=0
            ).fit(small_dataset.views)
        parallel = UnifiedMVSC(
            small_dataset.n_clusters, random_state=0, n_jobs=2
        ).fit(small_dataset.views)
        np.testing.assert_array_equal(baseline.labels, cached.labels)
        np.testing.assert_array_equal(baseline.labels, parallel.labels)
        np.testing.assert_array_equal(baseline.embedding, cached.embedding)

    def test_grid_sweep_no_redundant_computation(self, small_dataset):
        # Acceptance criterion: across a seeds x grid sweep sharing one
        # cache, each distinct graph/eigen computation happens exactly
        # once — a second identical sweep adds zero new misses — and the
        # scores are bit-identical to the uncached serial path.
        grid = {"lam": [0.5, 1.0], "n_neighbors": [8, 10]}

        def build(random_state=0, **params):
            model = UnifiedMVSC(
                small_dataset.n_clusters, random_state=random_state, **params
            )

            class _Adapter:
                def fit_predict(self, views):
                    return model.fit(views).labels

            return _Adapter()

        def sweep_scores(**kwargs):
            points = []
            for seed in (0, 1, 2):
                result = grid_sweep(
                    small_dataset, build, grid, random_state=seed, **kwargs
                )
                points.extend(p.scores["acc"] for p in result.points)
            return points

        cache = ComputationCache()
        baseline = sweep_scores()
        cached = sweep_scores(cache=cache, n_jobs=2)
        misses_after_first = cache.stats().misses
        again = sweep_scores(cache=cache, n_jobs=2)
        s = cache.stats()
        assert s.misses == misses_after_first  # zero redundant computations
        assert s.hits > 0
        assert baseline == cached == again
