"""Tests for the offline trace analytics (repro.observability.analysis)."""

import io
import json

import pytest

from repro.cli import main
from repro.exceptions import TraceFileError
from repro.observability import (
    JsonlSink,
    Trace,
    critical_path,
    hotspot_summary,
    load_trace,
    metrics_snapshot,
    span,
    to_chrome_trace,
    use_trace,
)
from repro.observability.trace import metric_inc


def _write_trace(path):
    """A small real trace file: root -> (child_a, child_b -> grandchild)."""
    with use_trace(Trace("unit", sinks=[JsonlSink(path)])) as trace:
        metric_inc("unit.counter", 2)
        with span("root"):
            with span("child_a", view=0):
                pass
            with span("child_b"):
                with span("grandchild"):
                    pass
    return trace


class TestLoadTrace:
    def test_round_trip_shapes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace = _write_trace(path)
        data = load_trace(path)
        assert [s["name"] for s in data.spans] == [
            "child_a", "grandchild", "child_b", "root",
        ]
        assert data.iterations == []
        assert data.meta is not None
        assert data.meta["trace_id"] == trace.trace_id
        assert data.trace_ids == [trace.trace_id]

    def test_missing_file_is_typed_error(self, tmp_path):
        with pytest.raises(TraceFileError, match="cannot read trace file"):
            load_trace(tmp_path / "absent.jsonl")

    def test_malformed_json_line_is_typed_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span", "name": "x"}\nnot json\n')
        with pytest.raises(TraceFileError, match="bad.jsonl:2 is not valid"):
            load_trace(path)

    def test_non_record_line_is_typed_error(self, tmp_path):
        path = tmp_path / "odd.jsonl"
        path.write_text('[1, 2, 3]\n')
        with pytest.raises(TraceFileError, match="not a trace record"):
            load_trace(path)

    def test_no_spans_is_typed_error(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text('{"type": "fit_start", "solver": "X"}\n')
        with pytest.raises(TraceFileError, match="no span records"):
            load_trace(path)


class TestHotspots:
    def _synthetic(self, tmp_path):
        # root (1.0s) -> child (0.6s) -> grandchild (0.1s); child twice.
        records = [
            {"type": "span", "name": "grandchild", "duration": 0.1,
             "span_id": "g", "parent_id": "c1"},
            {"type": "span", "name": "child", "duration": 0.6,
             "span_id": "c1", "parent_id": "r"},
            {"type": "span", "name": "child", "duration": 0.2,
             "span_id": "c2", "parent_id": "r"},
            {"type": "span", "name": "root", "duration": 1.0,
             "span_id": "r"},
        ]
        path = tmp_path / "s.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return load_trace(path)

    def test_self_time_subtracts_direct_children(self, tmp_path):
        rows = {r.name: r for r in hotspot_summary(self._synthetic(tmp_path))}
        assert rows["root"].total_seconds == pytest.approx(1.0)
        assert rows["root"].self_seconds == pytest.approx(0.2)  # 1.0-0.6-0.2
        assert rows["child"].count == 2
        assert rows["child"].total_seconds == pytest.approx(0.8)
        assert rows["child"].self_seconds == pytest.approx(0.7)  # 0.8-0.1
        assert rows["grandchild"].self_seconds == pytest.approx(0.1)
        assert rows["child"].mean_seconds == pytest.approx(0.4)

    def test_rows_ranked_by_self_time_and_top_cap(self, tmp_path):
        data = self._synthetic(tmp_path)
        rows = hotspot_summary(data)
        assert [r.name for r in rows] == ["child", "root", "grandchild"]
        assert [r.name for r in hotspot_summary(data, top=1)] == ["child"]

    def test_self_times_sum_to_root_duration(self, tmp_path):
        rows = hotspot_summary(self._synthetic(tmp_path))
        assert sum(r.self_seconds for r in rows) == pytest.approx(1.0)


class TestCriticalPath:
    def test_walks_longest_child_chain(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        steps = critical_path(load_trace(path))
        assert [s.name for s in steps][0] == "root"
        assert [s.depth for s in steps] == list(range(len(steps)))
        # Steps partition the root's duration.
        assert sum(s.self_seconds for s in steps) == pytest.approx(
            steps[0].duration_seconds, rel=1e-6
        )

    def test_named_root(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        steps = critical_path(load_trace(path), root="child_b")
        assert [s.name for s in steps] == ["child_b", "grandchild"]

    def test_unknown_root_is_typed_error(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        with pytest.raises(TraceFileError, match="no span named 'nope'"):
            critical_path(load_trace(path), root="nope")


class TestChromeExport:
    def test_document_shape_and_units(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace = _write_trace(path)
        data = load_trace(path)
        doc = to_chrome_trace(data)
        assert json.loads(json.dumps(doc)) == doc  # strict-JSON safe
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "unit"
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(data.spans)
        root = next(e for e in complete if e["name"] == "root")
        root_rec = next(s for s in data.spans if s["name"] == "root")
        # Microseconds, laid out on the wall clock, one lane per thread.
        assert root["ts"] == pytest.approx(root_rec["timestamp"] * 1e6)
        assert root["dur"] == pytest.approx(root_rec["duration"] * 1e6)
        assert root["pid"] == trace.pid
        assert root["tid"] == root_rec["thread"]
        assert root["args"]["trace_id"] == trace.trace_id

    def test_links_become_flow_arrows(self, tmp_path):
        records = [
            {"type": "span", "name": "request", "duration": 0.2,
             "span_id": "req", "timestamp": 100.0, "links": ["bat"]},
            {"type": "span", "name": "batch", "duration": 0.1,
             "span_id": "bat", "timestamp": 100.1, "links": ["req"]},
        ]
        path = tmp_path / "linked.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        doc = to_chrome_trace(load_trace(path))
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        # The reciprocal link pair is deduplicated into one arrow.
        assert len(starts) == 1 and len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"]
        assert starts[0]["ts"] <= finishes[0]["ts"]


class TestMetricsSnapshot:
    def test_reads_trace_end_payload(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        snapshot = metrics_snapshot(load_trace(path))
        assert snapshot["counters"]["unit.counter"] == 2

    def test_missing_snapshot_is_typed_error(self, tmp_path):
        path = tmp_path / "nometa.jsonl"
        path.write_text('{"type": "span", "name": "x", "duration": 0.1}\n')
        with pytest.raises(TraceFileError, match="no metrics snapshot"):
            metrics_snapshot(load_trace(path))


class TestTraceCLI:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "cli.jsonl"
        _write_trace(path)
        return path

    def test_summary_prints_hotspot_table(self, trace_file):
        out = io.StringIO()
        assert main(["trace", "summary", str(trace_file)], out=out) == 0
        text = out.getvalue()
        assert "4 spans" in text
        for name in ("root", "child_a", "child_b", "grandchild"):
            assert name in text
        assert "self" in text and "share" in text

    def test_critical_path_prints_chain(self, trace_file):
        out = io.StringIO()
        assert (
            main(
                ["trace", "critical-path", str(trace_file), "--root", "root"],
                out=out,
            )
            == 0
        )
        assert "critical path (root)" in out.getvalue()

    def test_export_writes_valid_chrome_json(self, trace_file, tmp_path):
        out = io.StringIO()
        dest = tmp_path / "chrome.json"
        assert (
            main(
                ["trace", "export", str(trace_file), "--out", str(dest)],
                out=out,
            )
            == 0
        )
        doc = json.loads(dest.read_text())
        assert doc["traceEvents"]
        assert "Perfetto" in out.getvalue()

    def test_missing_file_exits_with_message(self, tmp_path, capsys):
        out = io.StringIO()
        code = main(["trace", "summary", str(tmp_path / "no.jsonl")], out=out)
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read trace file")

    def test_served_session_trace_is_analyzable(self, tmp_path):
        # End-to-end: a PredictionService session's JSONL supports every
        # trace command (summary roots differ from a fit trace).
        import numpy as np

        from repro.datasets.synth import make_multiview_blobs
        from repro.serving import ModelArtifact, PredictionService, Predictor

        ds = make_multiview_blobs(60, 3, view_dims=(6, 8), random_state=0)
        artifact = ModelArtifact(
            model_class="UnifiedMVSC",
            train_views=ds.views,
            train_labels=ds.labels,
            view_weights=np.array([0.5, 0.5]),
            n_clusters=ds.n_clusters,
        )
        path = tmp_path / "served.jsonl"
        with use_trace(Trace("serve", sinks=[JsonlSink(path)])):
            with PredictionService(Predictor(artifact), max_batch=8) as svc:
                for i in range(4):
                    svc.predict_one([v[i] for v in ds.views])
        out = io.StringIO()
        assert main(["trace", "summary", str(path)], out=out) == 0
        assert "serving.request" in out.getvalue()
        out = io.StringIO()
        assert (
            main(
                ["trace", "critical-path", str(path),
                 "--root", "serving.batch"],
                out=out,
            )
            == 0
        )
        assert "serving.predict" in out.getvalue()
