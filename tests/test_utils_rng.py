"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.rng import check_random_state, spawn_seeds


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = check_random_state(42).integers(0, 1_000_000, size=5)
        b = check_random_state(42).integers(0, 1_000_000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = check_random_state(1).integers(0, 1_000_000, size=8)
        b = check_random_state(2).integers(0, 1_000_000, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_numpy_integer_accepted(self):
        gen = check_random_state(np.int64(7))
        assert isinstance(gen, np.random.Generator)

    def test_seed_sequence_accepted(self):
        gen = check_random_state(np.random.SeedSequence(5))
        assert isinstance(gen, np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(ValidationError, match="random_state"):
            check_random_state("not-a-seed")


class TestSpawnSeeds:
    def test_count_and_range(self):
        seeds = spawn_seeds(0, 10)
        assert len(seeds) == 10
        assert all(0 <= s < 2**31 for s in seeds)

    def test_deterministic(self):
        assert spawn_seeds(3, 5) == spawn_seeds(3, 5)

    def test_distinct_in_practice(self):
        seeds = spawn_seeds(0, 50)
        assert len(set(seeds)) == 50

    def test_nonpositive_raises(self):
        with pytest.raises(ValidationError):
            spawn_seeds(0, 0)
