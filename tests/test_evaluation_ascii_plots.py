"""Tests for repro.evaluation.ascii_plots."""

import numpy as np
import pytest

from repro.evaluation.ascii_plots import bar_chart, heatmap, line_plot
from repro.exceptions import ValidationError


class TestBarChart:
    def test_doc_example(self):
        text = bar_chart({"a": 1.0, "b": 0.5}, width=4)
        lines = text.splitlines()
        assert lines[0].endswith("████")
        assert lines[1].endswith("██")

    def test_zero_values(self):
        text = bar_chart({"x": 0.0, "y": 0.0})
        assert "0.000" in text

    def test_longest_bar_is_max(self):
        text = bar_chart({"small": 0.2, "big": 0.9}, width=10)
        small_line, big_line = text.splitlines()
        assert big_line.count("█") == 10
        assert small_line.count("█") < 10

    def test_validation(self):
        with pytest.raises(ValidationError):
            bar_chart({})
        with pytest.raises(ValidationError):
            bar_chart({"a": -1.0})


class TestHeatmap:
    def test_shape_and_labels(self):
        grid = np.array([[0.1, 0.9], [0.5, 0.3]])
        text = heatmap(grid, row_labels=["r0", "r1"], col_labels=["c0", "c1"])
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 rows
        assert "c0" in lines[0] and "c1" in lines[0]
        assert lines[1].startswith("r0")

    def test_max_gets_darkest_shade(self):
        grid = np.array([[0.0, 1.0]])
        text = heatmap(grid)
        assert "█" in text

    def test_constant_grid(self):
        text = heatmap(np.full((2, 2), 3.0))
        assert text.count("█") == 4

    def test_validation(self):
        with pytest.raises(ValidationError):
            heatmap(np.zeros((0, 2)))
        with pytest.raises(ValidationError):
            heatmap(np.zeros((2, 2)), row_labels=["only-one"])


class TestLinePlot:
    def test_height_rows(self):
        text = line_plot([3.0, 2.0, 1.0], height=5)
        lines = text.splitlines()
        assert len(lines) == 6  # 5 rows + axis
        assert set(lines[-1]) == {"─"}

    def test_monotone_series_shape(self):
        text = line_plot([5.0, 4.0, 3.0, 2.0, 1.0], height=5)
        top_row = text.splitlines()[0]
        # Only the first (largest) point reaches the top band.
        assert top_row[0] == "█"
        assert top_row[-1] == " "

    def test_downsampling(self):
        text = line_plot(list(range(100)), height=3, width=10)
        assert len(text.splitlines()[0]) <= 34

    def test_validation(self):
        with pytest.raises(ValidationError):
            line_plot([])
        with pytest.raises(ValidationError):
            line_plot([1.0], height=0)
