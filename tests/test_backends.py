"""The pluggable compute-backend layer (:mod:`repro.backends`).

Three contracts are pinned here:

* **Registry/selection** — ``use_backend`` / ``REPRO_BACKEND`` / default
  resolution order, eager rejection of unknown names, cache-key
  segregation between backends.
* **numpy bit-identity** — the default backend is the pre-backend code
  moved verbatim, so every kernel's output is pinned against blake2b
  hashes captured *before* the refactor.  A hash mismatch here means the
  default numerical contract changed — that is a bug, not a tolerance
  question.
* **Alternate-backend equivalence** — float32 (and numba, when
  installed) agree with numpy within each backend's documented
  ``tolerance`` on every kernel and produce identical clusterings
  (ARI 1.0) end to end.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.backends import (
    ArrayBackend,
    available_backends,
    current_backend,
    get_backend,
    use_backend,
)
from repro.exceptions import ValidationError
from repro.graph.affinity import (
    cosine_affinity,
    gaussian_affinity,
    self_tuning_affinity,
)
from repro.graph.distance import (
    pairwise_cosine_distances,
    pairwise_sq_euclidean,
)
from repro.graph.knn import kneighbors
from repro.linalg.eigen import eigsh_smallest, sorted_eigh
from repro.serving.predictor import kernel_vote_scores


def _digest(*arrays) -> str:
    """blake2b over shape/dtype/bytes — the pre-refactor pinning scheme."""
    h = hashlib.blake2b(digest_size=16)
    for a in arrays:
        a = np.ascontiguousarray(a)
        h.update(f"{a.shape}:{a.dtype.str}".encode())
        h.update(a.tobytes())
    return h.hexdigest()


def _fixtures() -> dict:
    """Small deterministic inputs, including degenerate shapes.

    The generator consumption order is load-bearing: these must match
    the script that captured :data:`PRE_REFACTOR_HASHES` byte for byte.
    """
    rng = np.random.default_rng(0)
    blobs = np.vstack(
        [rng.normal(size=(12, 6)), rng.normal(size=(12, 6)) + 6.0]
    )
    zero_rows = blobs.copy()
    zero_rows[[2, 17]] = 0.0
    dup = blobs.copy()
    dup[5] = dup[4]
    dup[19] = dup[4]
    single = rng.normal(size=(18, 4)) * 0.05 + 3.0
    return {
        "blobs": blobs,
        "zero_rows": zero_rows,
        "duplicated": dup,
        "single_cluster": single,
    }


#: Captured on the pre-backend code (commit a6f1611) with the script in
#: this file's history; the numpy backend must reproduce every one.
PRE_REFACTOR_HASHES = {
    "cosine/blobs": "1f38eb4df145d6e8296c84bff6092dae",
    "cosine/duplicated": "11d90b55a49b44cf289060f34b45e472",
    "cosine/single_cluster": "5908ed25640577a9f082d3885b7da0a8",
    "cosine/zero_rows": "56d985512da171b8dd73c027313c657f",
    "cosine_dist/blobs": "b37bcaa0acfe12c75a8553efb2bb6fc5",
    "cosine_dist/duplicated": "e4eae05c8b41cab71690a7f5239444ec",
    "cosine_dist/single_cluster": "fb2f3c3687010fce5d0176a322a0b992",
    "cosine_dist/zero_rows": "fd328aaade5fa3c88e4c7c7f826208f8",
    "eigsh_smallest/blobs": "22ffd06e080637ab0e25d94f2db9866c",
    "gaussian/blobs": "1a5bf76042956fd440adb5f3945196c8",
    "gaussian/duplicated": "2d04eedb58fa215bf2d896df44fcea80",
    "gaussian/single_cluster": "95c8271aaa5c9461648ac5022e9e1f63",
    "gaussian/zero_rows": "e748ef1eae5c5ddf96b1696554bddfd0",
    "knn/blobs": "19f9a0112a1da9d3c69e43859475d9c6",
    "knn/duplicated": "c4087898720d49cdc6dd526c0616c6da",
    "knn/single_cluster": "c64a68dafef0e872b86567383d21b1a9",
    "knn/zero_rows": "19a0a94afbcdd4060d00b650380126cb",
    "self_tuning/blobs": "30e49eb313a08934d313299a692c22b2",
    "self_tuning/duplicated": "570d3f7c5254ba54952cbdf87935edf4",
    "self_tuning/single_cluster": "858d505f5fa50e73dcaceb24993930dd",
    "self_tuning/zero_rows": "5c33b81711cec19744910ea02a9b6c24",
    "sorted_eigh/blobs": "5e5c4e33f07481572428ebe529f72b4f",
    "sq_euclidean/blobs": "1cc3a2227b95e4f653ced3ea24bbc839",
    "sq_euclidean/duplicated": "f50bfb4f4a0f9fda748160568a24e03f",
    "sq_euclidean/single_cluster": "f8667b23edb4e687a2df07761525e918",
    "sq_euclidean/zero_rows": "5fd025276c85b63762a869e7b6b7022e",
    "umsc_embedding_abs": "16276292ec0212a6443c0f493ebd6826",
    "umsc_labels": "60e097bf854a7a3f12be1982da3d4dc3",
    "vote/blobs": "e00cfbb50a153f499a0406e40d9131cf",
}

#: Exact median-heuristic bandwidths from the pre-refactor masked-median
#: code; the mask-free :func:`repro.graph.affinity._median_offdiag` must
#: reproduce them bit for bit.
PRE_REFACTOR_SIGMAS = {
    "blobs": 12.434147276781045,
    "zero_rows": 12.434147276781045,
    "duplicated": 12.375566856625621,
    "single_cluster": 0.12459311588166148,
}


def _kernel_hashes() -> dict:
    """Every pinned kernel output under the currently active backend."""
    fixtures = _fixtures()
    out = {}
    for name, x in fixtures.items():
        out[f"gaussian/{name}"] = _digest(gaussian_affinity(x))
        out[f"self_tuning/{name}"] = _digest(self_tuning_affinity(x, k=5))
        out[f"cosine/{name}"] = _digest(cosine_affinity(x))
        out[f"sq_euclidean/{name}"] = _digest(pairwise_sq_euclidean(x))
        out[f"cosine_dist/{name}"] = _digest(pairwise_cosine_distances(x))
        idx, dd = kneighbors(np.sqrt(pairwise_sq_euclidean(x)), 4)
        out[f"knn/{name}"] = _digest(idx, dd)
    blobs = fixtures["blobs"]
    d2 = pairwise_sq_euclidean(blobs)
    labels = np.repeat([0, 1], 12).astype(np.int64)
    out["vote/blobs"] = _digest(kernel_vote_scores(d2, labels, 2, 5))
    w = gaussian_affinity(blobs)
    vals, vecs = sorted_eigh(w)
    out["sorted_eigh/blobs"] = _digest(vals, np.abs(vecs))
    vals, vecs = eigsh_smallest(w, 3)
    out["eigsh_smallest/blobs"] = _digest(vals, np.abs(vecs))
    return out


# --- registry and selection ------------------------------------------------


class TestSelection:
    """Backend registry, precedence, and error behavior."""

    def test_default_is_numpy(self):
        assert current_backend().name == "numpy"
        assert current_backend().compute_dtype == np.float64

    def test_available_backends_lists_default_first(self):
        names = available_backends()
        assert names[0] == "numpy"
        assert set(names) == {"numpy", "float32", "numba"}

    def test_get_backend_resolves_names_and_instances(self):
        b = get_backend("float32")
        assert b.name == "float32"
        assert get_backend(b) is b

    def test_get_backend_unknown_raises(self):
        with pytest.raises(ValidationError, match="unknown backend"):
            get_backend("float16")

    def test_use_backend_nests_and_restores(self):
        assert current_backend().name == "numpy"
        with use_backend("float32") as b:
            assert current_backend() is b
            with use_backend("numpy"):
                assert current_backend().name == "numpy"
            assert current_backend().name == "float32"
        assert current_backend().name == "numpy"

    @pytest.fixture
    def no_ambient_pin(self):
        """Clear any enclosing ``use_backend`` so the env var is reachable.

        The suite-wide conftest fixture pins numpy through the contextvar
        whenever ``REPRO_BACKEND`` is set (the float32 CI leg); these two
        tests probe the env-var tier underneath that pin.
        """
        from repro.backends import _ACTIVE

        token = _ACTIVE.set(None)
        yield
        _ACTIVE.reset(token)

    def test_env_var_resolution(self, monkeypatch, no_ambient_pin):
        monkeypatch.setenv("REPRO_BACKEND", "float32")
        assert current_backend().name == "float32"
        # An enclosing use_backend still wins over the environment.
        with use_backend("numpy"):
            assert current_backend().name == "numpy"

    def test_env_var_unknown_raises(self, monkeypatch, no_ambient_pin):
        monkeypatch.setenv("REPRO_BACKEND", "no_such_backend")
        with pytest.raises(ValidationError, match="unknown backend"):
            current_backend()

    def test_backends_are_arraybackend_instances(self):
        for name in available_backends():
            assert isinstance(get_backend(name), ArrayBackend)

    def test_model_param_rejects_unknown_backend_eagerly(self):
        from repro import AnchorMVSC, SparseMVSC, UnifiedMVSC

        for cls in (UnifiedMVSC, AnchorMVSC, SparseMVSC):
            with pytest.raises(ValidationError, match="unknown backend"):
                cls(2, backend="no_such_backend")


class TestCacheKeys:
    """Backend identity must segregate computation-cache entries."""

    def test_cache_key_differs_across_backends(self):
        from repro.pipeline.cache import cache_key

        x = np.ones((4, 3))
        default_key = cache_key("affinity", arrays=(x,), params={"k": 2})
        with use_backend("float32"):
            f32_key = cache_key("affinity", arrays=(x,), params={"k": 2})
        assert default_key != f32_key

    def test_numba_fallback_token_matches_numpy(self):
        # Without numba installed the backend computes with the numpy
        # kernels, so its cached results are interchangeable and must
        # share the numpy token; with numba installed they are not.
        numba_backend = get_backend("numba")
        numpy_token = get_backend("numpy").cache_token()
        if numba_backend.available:
            assert numba_backend.cache_token() != numpy_token
        else:
            assert numba_backend.cache_token() == numpy_token


# --- numpy bit-identity ----------------------------------------------------


class TestNumpyBitIdentity:
    """The default backend reproduces the pre-refactor bytes exactly."""

    def test_kernel_hashes_match_pre_refactor(self):
        assert _kernel_hashes() == {
            k: v
            for k, v in PRE_REFACTOR_HASHES.items()
            if not k.startswith("umsc_")
        }

    def test_median_heuristic_sigma_bit_identical(self):
        # The mask-free off-diagonal median must agree bit for bit with
        # the old boolean-mask implementation it replaced.
        from repro.graph.affinity import _median_offdiag

        for name, x in _fixtures().items():
            d2 = pairwise_sq_euclidean(x)
            med = _median_offdiag(d2)
            sigma = np.sqrt(med) if med > 0 else 1.0
            assert float(sigma) == PRE_REFACTOR_SIGMAS[name], name

    @pytest.mark.slow
    def test_umsc_fit_bit_identical(self):
        from repro import UnifiedMVSC, make_multiview_blobs

        ds = make_multiview_blobs(120, 3, view_dims=(10, 15), random_state=0)
        res = UnifiedMVSC(3, random_state=0).fit(ds.views)
        assert _digest(res.labels) == PRE_REFACTOR_HASHES["umsc_labels"]
        assert (
            _digest(np.abs(res.embedding))
            == PRE_REFACTOR_HASHES["umsc_embedding_abs"]
        )


# --- alternate-backend equivalence ----------------------------------------

ALTERNATES = ["float32", "numba"]


def _assert_close(ref, alt, tol, label):
    ref = np.asarray(ref, dtype=np.float64)
    alt = np.asarray(alt, dtype=np.float64)
    assert ref.shape == alt.shape, label
    scale = max(1.0, float(np.max(np.abs(ref))))
    np.testing.assert_allclose(
        alt, ref, atol=max(tol, 1e-15) * scale, rtol=tol + 1e-12, err_msg=label
    )


@pytest.mark.parametrize("name", ALTERNATES)
class TestBackendEquivalence:
    """Each alternate agrees with numpy within its documented tolerance."""

    def test_affinity_kernels_within_tolerance(self, name):
        backend = get_backend(name)
        for fx_name, x in _fixtures().items():
            for kernel, kwargs in (
                (gaussian_affinity, {}),
                (self_tuning_affinity, {"k": 5}),
                (cosine_affinity, {}),
            ):
                ref = kernel(x, **kwargs)
                with use_backend(name):
                    alt = kernel(x, **kwargs)
                _assert_close(
                    ref,
                    alt,
                    backend.tolerance,
                    f"{kernel.__name__}/{fx_name}/{name}",
                )

    def test_float32_outputs_stay_float32(self, name):
        if name != "float32":
            pytest.skip("dtype contract is float32-specific")
        x = _fixtures()["blobs"]
        with use_backend("float32"):
            assert gaussian_affinity(x).dtype == np.float32
            assert self_tuning_affinity(x, k=5).dtype == np.float32
            assert pairwise_sq_euclidean(x).dtype == np.float32
            # Eigensolvers and the vote always hand back float64 so the
            # solver/rotation/assignment layers keep their contract.
            w = gaussian_affinity(np.asarray(x, dtype=np.float64))
            vals, vecs = sorted_eigh(w)
            assert vals.dtype == np.float64 and vecs.dtype == np.float64

    def test_knn_same_neighbor_sets(self, name):
        for fx_name, x in _fixtures().items():
            d = np.sqrt(pairwise_sq_euclidean(x))
            idx_ref, _ = kneighbors(d, 4)
            with use_backend(name):
                idx_alt, _ = kneighbors(d, 4)
            # Ties may order differently across dtypes; the neighbor
            # *sets* must match row by row on these well-separated
            # fixtures.
            assert idx_ref.shape == idx_alt.shape
            same = [
                set(a) == set(b) for a, b in zip(idx_ref, idx_alt)
            ]
            assert all(same), f"knn/{fx_name}/{name}"

    def test_vote_scores_within_tolerance(self, name):
        backend = get_backend(name)
        x = _fixtures()["blobs"]
        d2 = pairwise_sq_euclidean(x)
        labels = np.repeat([0, 1], 12).astype(np.int64)
        ref = kernel_vote_scores(d2, labels, 2, 5)
        with use_backend(name):
            alt = kernel_vote_scores(d2, labels, 2, 5)
        assert alt.dtype == np.float64
        _assert_close(ref, alt, backend.tolerance, f"vote/{name}")

    def test_end_to_end_labels_identical(self, name, small_dataset):
        from repro import UnifiedMVSC, evaluate_clustering

        ref = UnifiedMVSC(
            small_dataset.n_clusters, random_state=0
        ).fit_predict(small_dataset.views)
        alt = UnifiedMVSC(
            small_dataset.n_clusters, random_state=0, backend=name
        ).fit_predict(small_dataset.views)
        ari = evaluate_clustering(ref, alt, metrics=("ari",))["ari"]
        assert ari == 1.0


class TestNumbaBackend:
    """The optional backend must degrade gracefully when numba is absent."""

    def test_importable_and_selectable_without_numba(self):
        backend = get_backend("numba")
        with use_backend("numba"):
            w = gaussian_affinity(_fixtures()["blobs"])
        assert w.dtype == np.float64
        if not backend.available:
            # Pure fallback: bit-identical to the numpy backend.
            assert _digest(w) == _digest(gaussian_affinity(_fixtures()["blobs"]))

    def test_jitted_kernels_match_numpy(self):
        backend = get_backend("numba")
        if not backend.available:
            pytest.skip("numba not installed")
        x = _fixtures()["blobs"]
        ref = self_tuning_affinity(x, k=5)
        with use_backend("numba"):
            alt = self_tuning_affinity(x, k=5)
        _assert_close(ref, alt, backend.tolerance, "numba/self_tuning")


class TestPredictorBackend:
    """The serving layer's ``backend=`` parameter scopes scoring."""

    def test_predict_labels_match_across_backends(self, small_dataset):
        from repro import UnifiedMVSC
        from repro.serving import Predictor

        model = UnifiedMVSC(small_dataset.n_clusters, random_state=0)
        model.fit(small_dataset.views)
        artifact = model.to_artifact()
        ref = Predictor(artifact).predict(small_dataset.views)
        alt = Predictor(artifact, backend="float32").predict(
            small_dataset.views
        )
        assert np.array_equal(ref, alt)

    def test_predictor_rejects_unknown_backend(self, small_dataset):
        from repro import UnifiedMVSC
        from repro.serving import Predictor

        model = UnifiedMVSC(small_dataset.n_clusters, random_state=0)
        model.fit(small_dataset.views)
        with pytest.raises(ValidationError, match="unknown backend"):
            Predictor(model.to_artifact(), backend="no_such_backend")


class TestRunnerBackend:
    """``run_experiment(backend=...)`` scopes the whole experiment."""

    def test_runner_backend_param(self, small_dataset):
        from repro import run_experiment

        results = run_experiment(
            small_dataset,
            methods=["UMSC"],
            n_runs=1,
            backend="float32",
            collect_phases=False,
        )
        assert results["UMSC"].scores["acc"].mean > 0.9
