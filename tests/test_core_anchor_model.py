"""Tests for repro.core.anchor_model (scalable UMSC variant)."""

import numpy as np
import pytest

from repro.core.anchor_model import AnchorMVSC
from repro.datasets import make_multiview_blobs
from repro.exceptions import ValidationError
from repro.metrics import clustering_accuracy


@pytest.fixture(scope="module")
def easy_big():
    return make_multiview_blobs(
        500,
        4,
        view_dims=(12, 16),
        view_noise=(0.1, 0.2),
        view_distractors=(0.0, 0.0),
        view_outliers=(0.0, 0.0),
        confusion_schedule=[[], []],
        separation=7.0,
        random_state=3,
    )


class TestAnchorMVSC:
    def test_recovers_easy_clusters(self, easy_big):
        labels = AnchorMVSC(4, random_state=0).fit_predict(easy_big.views)
        assert clustering_accuracy(easy_big.labels, labels) > 0.9

    def test_no_empty_clusters(self, easy_big):
        labels = AnchorMVSC(4, random_state=1).fit_predict(easy_big.views)
        assert np.all(np.bincount(labels, minlength=4) >= 1)

    def test_deterministic(self, easy_big):
        a = AnchorMVSC(4, random_state=7).fit_predict(easy_big.views)
        b = AnchorMVSC(4, random_state=7).fit_predict(easy_big.views)
        np.testing.assert_array_equal(a, b)

    def test_explicit_anchor_count(self, easy_big):
        labels = AnchorMVSC(
            4, n_anchors=40, random_state=0
        ).fit_predict(easy_big.views)
        assert clustering_accuracy(easy_big.labels, labels) > 0.85

    def test_weighting_modes(self, easy_big):
        for mode in ("exponential", "parameter_free", "uniform"):
            labels = AnchorMVSC(
                4, weighting=mode, random_state=0
            ).fit_predict(easy_big.views)
            assert clustering_accuracy(easy_big.labels, labels) > 0.85

    def test_validation(self, easy_big):
        with pytest.raises(ValidationError):
            AnchorMVSC(0)
        with pytest.raises(ValidationError):
            AnchorMVSC(2, n_anchors=-1)
        with pytest.raises(ValidationError):
            AnchorMVSC(2, weighting="vibes")
        with pytest.raises(ValidationError, match="exceeds"):
            AnchorMVSC(10_000).fit_predict(easy_big.views)

    def test_faster_than_dense_at_scale(self):
        import time

        from repro.core import UnifiedMVSC

        ds = make_multiview_blobs(
            900, 4, view_dims=(15, 15), separation=6.0, random_state=4
        )
        start = time.perf_counter()
        AnchorMVSC(4, random_state=0).fit_predict(ds.views)
        anchor_time = time.perf_counter() - start
        start = time.perf_counter()
        UnifiedMVSC(4, random_state=0).fit(ds.views)
        dense_time = time.perf_counter() - start
        assert anchor_time < dense_time
