"""Tests for repro.core.incomplete (incomplete multi-view clustering)."""

import numpy as np
import pytest

from repro.core.incomplete import IncompleteMVSC, fuse_incomplete_affinities
from repro.datasets import make_multiview_blobs
from repro.exceptions import ValidationError
from repro.metrics import clustering_accuracy


@pytest.fixture(scope="module")
def dataset():
    return make_multiview_blobs(
        120,
        3,
        view_dims=(12, 15),
        view_noise=(0.15, 0.3),
        view_distractors=(0.0, 0.0),
        view_outliers=(0.0, 0.0),
        separation=6.0,
        random_state=9,
    )


def _random_masks(n, n_views, drop, seed):
    rng = np.random.default_rng(seed)
    masks = []
    for _ in range(n_views):
        mask = rng.random(n) >= drop
        masks.append(mask)
    # Guarantee full coverage: force uncovered samples into view 0.
    coverage = np.zeros(n, dtype=int)
    for m in masks:
        coverage += m
    masks[0] = masks[0] | (coverage == 0)
    return masks


class TestFuseIncompleteAffinities:
    def test_full_masks_behave_like_average(self, dataset):
        masks = [np.ones(120, dtype=bool)] * 2
        fused = fuse_incomplete_affinities(dataset.views, masks)
        assert fused.shape == (120, 120)
        np.testing.assert_allclose(fused, fused.T, atol=1e-12)
        assert np.all(fused >= 0)

    def test_pair_unobserved_anywhere_is_zero(self, dataset):
        masks = [np.ones(120, dtype=bool), np.ones(120, dtype=bool)]
        masks[0][0] = False
        masks[1][0] = False  # would break coverage...
        with pytest.raises(ValidationError, match="no view"):
            fuse_incomplete_affinities(dataset.views, masks)

    def test_partial_pair_normalization(self, dataset):
        # A sample observed only in view 0 still gets edges (from view 0),
        # normalized by a count of 1 rather than 2.
        masks = [np.ones(120, dtype=bool), np.ones(120, dtype=bool)]
        masks[1][:5] = False
        fused = fuse_incomplete_affinities(dataset.views, masks)
        assert np.any(fused[0] > 0)

    def test_mask_validation(self, dataset):
        with pytest.raises(ValidationError, match="one mask per view"):
            fuse_incomplete_affinities(dataset.views, [np.ones(120, dtype=bool)])
        with pytest.raises(ValidationError, match="shape"):
            fuse_incomplete_affinities(
                dataset.views,
                [np.ones(100, dtype=bool), np.ones(120, dtype=bool)],
            )
        with pytest.raises(ValidationError, match="boolean"):
            fuse_incomplete_affinities(
                dataset.views,
                [np.full(120, 0.5), np.ones(120, dtype=bool)],
            )
        with pytest.raises(ValidationError, match="fewer than 2"):
            masks = [np.zeros(120, dtype=bool), np.ones(120, dtype=bool)]
            masks[0][0] = True
            fuse_incomplete_affinities(dataset.views, masks)


class TestIncompleteMVSC:
    def test_complete_masks_match_quality(self, dataset):
        masks = [np.ones(120, dtype=bool)] * 2
        labels = IncompleteMVSC(3, random_state=0).fit_predict(
            dataset.views, masks
        )
        assert clustering_accuracy(dataset.labels, labels) > 0.9

    @pytest.mark.parametrize("drop", [0.2, 0.4])
    def test_robust_to_missing_views(self, dataset, drop):
        masks = _random_masks(120, 2, drop, seed=3)
        labels = IncompleteMVSC(3, random_state=0).fit_predict(
            dataset.views, masks
        )
        assert clustering_accuracy(dataset.labels, labels) > 0.8

    def test_result_structure(self, dataset):
        masks = _random_masks(120, 2, 0.3, seed=4)
        result = IncompleteMVSC(3, random_state=0).fit(dataset.views, masks)
        assert result.labels.shape == (120,)
        assert np.all(np.bincount(result.labels, minlength=3) >= 1)

    def test_deterministic(self, dataset):
        masks = _random_masks(120, 2, 0.25, seed=5)
        a = IncompleteMVSC(3, random_state=2).fit_predict(dataset.views, masks)
        b = IncompleteMVSC(3, random_state=2).fit_predict(dataset.views, masks)
        np.testing.assert_array_equal(a, b)
