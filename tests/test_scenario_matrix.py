"""Tests for the method × scenario robustness matrix harness
(:mod:`repro.evaluation.scenario_matrix`).

The smoke grid is deliberately tiny (2 methods × 3 scenarios, small
``n``) — the point is structural: the grid completes, every score is
finite and in range, failures are recorded per cell rather than
aborting the sweep, and on the ``confused_pairs`` scenario fusion beats
the worst single view (the scenario's acceptance property).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.single_view import all_single_view_labels
from repro.datasets.scenarios import Scenario, generate
from repro.evaluation.scenario_matrix import (
    DEFAULT_MATRIX_METHODS,
    MatrixMethod,
    format_matrix,
    matrix_method_registry,
    run_scenario_matrix,
)
from repro.exceptions import ValidationError
from repro.metrics import evaluate_clustering

SMOKE_METHODS = ("UMSC", "ConcatSC")
SMOKE_SCENARIOS = ("clean", "confused_pairs", "missing_views")
SMOKE_N = 70


@pytest.fixture(scope="module")
def smoke_matrix():
    return run_scenario_matrix(
        methods=SMOKE_METHODS,
        scenarios=SMOKE_SCENARIOS,
        n_samples=SMOKE_N,
        n_runs=1,
        strict=True,
    )


class TestSmokeGrid:
    def test_grid_completes_with_finite_scores(self, smoke_matrix):
        assert smoke_matrix.failures == []
        for metric in ("acc", "nmi", "ari"):
            grid = smoke_matrix.grid(metric)
            assert grid.shape == (len(SMOKE_METHODS), len(SMOKE_SCENARIOS))
            assert np.all(np.isfinite(grid))
        # ACC and NMI live in [0, 1]; ARI may dip slightly below 0.
        assert np.all(smoke_matrix.grid("acc") >= 0)
        assert np.all(smoke_matrix.grid("acc") <= 1)
        assert np.all(smoke_matrix.grid("ari") >= -0.5)

    def test_cells_carry_timing_and_run_count(self, smoke_matrix):
        for method in SMOKE_METHODS:
            for scenario in SMOKE_SCENARIOS:
                cell = smoke_matrix.cell(method, scenario)
                assert cell.ok
                assert cell.n_runs == 1
                assert cell.seconds.mean >= 0

    def test_fusion_beats_worst_single_view_on_confused_pairs(
        self, smoke_matrix
    ):
        data = generate("confused_pairs", n_samples=SMOKE_N)
        worst = min(
            evaluate_clustering(data.labels, labels, metrics=("acc",))["acc"]
            for labels in all_single_view_labels(
                data.views, data.n_clusters, random_state=0
            )
        )
        fused = smoke_matrix.cell("UMSC", "confused_pairs").scores["acc"]
        assert fused.mean > worst

    def test_format_marks_best_per_column(self, smoke_matrix):
        text = format_matrix(smoke_matrix, "acc")
        for name in SMOKE_METHODS + SMOKE_SCENARIOS:
            assert name in text
        # At least one best marker per scenario column (ties share it).
        assert text.count("*") >= len(SMOKE_SCENARIOS)

    def test_to_dict_is_json_ready(self, smoke_matrix):
        import json

        payload = smoke_matrix.to_dict()
        assert payload["schema_version"] == 1
        assert payload["methods"] == list(SMOKE_METHODS)
        assert payload["scenarios"] == list(SMOKE_SCENARIOS)
        cell = payload["cells"]["UMSC@clean"]
        assert cell["error"] is None
        assert set(cell["scores"]) == {"acc", "nmi", "ari"}
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["scenario_specs"]["clean"]["name"] == "clean"

    def test_unknown_cell_lookup_raises(self, smoke_matrix):
        with pytest.raises(ValidationError, match="no cell"):
            smoke_matrix.cell("UMSC", "nope")
        with pytest.raises(ValidationError, match="not in the matrix"):
            smoke_matrix.grid("purity")


class TestRegistryAndValidation:
    def test_registry_contains_core_and_baseline_rows(self):
        registry = matrix_method_registry()
        for name in DEFAULT_MATRIX_METHODS:
            assert name in registry
        assert registry["IncompleteMVSC"].mask_aware
        assert not registry["UMSC"].mask_aware

    def test_unknown_method_rejected(self):
        with pytest.raises(ValidationError, match="unknown matrix methods"):
            run_scenario_matrix(methods=("nope",), scenarios=("clean",))

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValidationError, match="unknown scenario"):
            run_scenario_matrix(methods=("UMSC",), scenarios=("nope",))

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValidationError, match="unknown metrics"):
            run_scenario_matrix(
                methods=("UMSC",), scenarios=("clean",), metrics=("woo",)
            )

    def test_bad_n_runs_rejected(self):
        with pytest.raises(ValidationError, match="n_runs"):
            run_scenario_matrix(
                methods=("UMSC",), scenarios=("clean",), n_runs=0
            )

    def test_duplicate_scenario_rejected(self):
        with pytest.raises(ValidationError, match="duplicate scenario"):
            run_scenario_matrix(
                methods=("UMSC",), scenarios=("clean", "clean")
            )

    def test_inline_scenario_objects_accepted(self):
        spec = Scenario(
            name="inline",
            n_samples=50,
            n_clusters=3,
            view_dims=(6, 6),
            latent_dim=4,
        )
        matrix = run_scenario_matrix(
            methods=("ConcatSC",), scenarios=(spec,), strict=True
        )
        assert matrix.scenarios == ["inline"]
        assert matrix.cell("ConcatSC", "inline").ok


class TestMaskAwareAndFailures:
    def test_incomplete_method_consumes_masks(self):
        matrix = run_scenario_matrix(
            methods=("IncompleteMVSC",),
            scenarios=("missing_views",),
            n_samples=SMOKE_N,
            strict=True,
        )
        cell = matrix.cell("IncompleteMVSC", "missing_views")
        assert cell.ok
        assert np.isfinite(cell.scores["acc"].mean)

    def test_mask_aware_method_runs_on_complete_scenario(self):
        matrix = run_scenario_matrix(
            methods=("IncompleteMVSC",),
            scenarios=("clean",),
            n_samples=50,
            strict=True,
        )
        assert matrix.cell("IncompleteMVSC", "clean").ok

    def test_cell_failure_recorded_not_raised(self):
        registry = matrix_method_registry()

        def broken(c, rs):
            raise ValidationError("wired to fail")

        failing = MatrixMethod("Broken", broken)
        # Drive _run_cell through the public API via an inline registry
        # patch: run with a method list containing the broken row.
        import repro.evaluation.scenario_matrix as sm

        original = sm.matrix_method_registry
        registry["Broken"] = failing
        sm.matrix_method_registry = lambda: registry
        try:
            matrix = run_scenario_matrix(
                methods=("Broken", "ConcatSC"),
                scenarios=("clean",),
                n_samples=50,
            )
        finally:
            sm.matrix_method_registry = original
        cell = matrix.cell("Broken", "clean")
        assert not cell.ok
        assert "wired to fail" in cell.error
        assert matrix.cell("ConcatSC", "clean").ok
        assert ("Broken", "clean", cell.error) in matrix.failures
        assert np.isnan(matrix.grid("acc")[0, 0])
        assert "ERR" in format_matrix(matrix, "acc")

    def test_strict_reraises_first_failure(self):
        registry = matrix_method_registry()

        def broken(c, rs):
            raise ValidationError("wired to fail")

        import repro.evaluation.scenario_matrix as sm

        original = sm.matrix_method_registry
        registry["Broken"] = MatrixMethod("Broken", broken)
        sm.matrix_method_registry = lambda: registry
        try:
            with pytest.raises(ValidationError, match="wired to fail"):
                run_scenario_matrix(
                    methods=("Broken",),
                    scenarios=("clean",),
                    n_samples=50,
                    strict=True,
                )
        finally:
            sm.matrix_method_registry = original
