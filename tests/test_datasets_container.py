"""Tests for repro.datasets.container."""

import numpy as np
import pytest

from repro.datasets.container import MultiViewDataset
from repro.exceptions import ValidationError


def _make(n=6):
    return MultiViewDataset(
        name="toy",
        views=[np.random.default_rng(0).normal(size=(n, 2)), np.zeros((n, 3))],
        labels=np.array([0, 0, 1, 1, 2, 2][:n]),
    )


class TestMultiViewDataset:
    def test_properties(self):
        ds = _make()
        assert ds.n_samples == 6
        assert ds.n_views == 2
        assert ds.n_clusters == 3
        assert ds.view_dims == (2, 3)

    def test_default_view_names(self):
        assert _make().view_names == ["view0", "view1"]

    def test_view_names_length_checked(self):
        with pytest.raises(ValidationError, match="view_names"):
            MultiViewDataset(
                name="bad",
                views=[np.zeros((4, 2))],
                labels=np.array([0, 0, 1, 1]),
                view_names=["a", "b"],
            )

    def test_labels_must_start_at_zero(self):
        with pytest.raises(ValidationError, match="consecutive"):
            MultiViewDataset(
                name="bad", views=[np.zeros((3, 2))], labels=np.array([1, 2, 3])
            )

    def test_labels_must_be_consecutive(self):
        with pytest.raises(ValidationError, match="consecutive"):
            MultiViewDataset(
                name="bad", views=[np.zeros((3, 2))], labels=np.array([0, 2, 2])
            )

    def test_negative_labels_rejected(self):
        with pytest.raises(ValidationError):
            MultiViewDataset(
                name="bad", views=[np.zeros((2, 2))], labels=np.array([-1, 0])
            )

    def test_label_length_checked(self):
        with pytest.raises(ValidationError):
            MultiViewDataset(
                name="bad", views=[np.zeros((3, 2))], labels=np.array([0, 1])
            )

    def test_subset_compacts_labels(self):
        ds = _make()
        sub = ds.subset([0, 1, 4, 5])  # classes {0, 2} -> {0, 1}
        assert sub.n_samples == 4
        np.testing.assert_array_equal(sub.labels, [0, 0, 1, 1])
        assert sub.view_dims == ds.view_dims

    def test_subset_empty_rejected(self):
        with pytest.raises(ValidationError):
            _make().subset([])

    def test_summary_mentions_shape(self):
        text = _make().summary()
        assert "n=6" in text and "views=2" in text and "clusters=3" in text
