"""Tests for the SLO/alert rules engine and the numerical-health probes.

Covers :mod:`repro.observability.health` end to end — selector
resolution over registry snapshots, the four rule kinds, the default
rule pack, JSON rule-pack loading, :class:`HealthMonitor` with
rate-of-change state, the ``health.*`` gauges published by traced
UMSC / anchor / streaming fits — and the ``repro health check`` CLI
including its CI exit-code contract (0 healthy / 1 critical / 2
unreadable input) with the fault-injected recovery-rate acceptance
path.
"""

from __future__ import annotations

import io
import json
import math

import numpy as np
import pytest

from repro.cli import main
from repro.core.anchor_model import AnchorMVSC
from repro.core.model import UnifiedMVSC
from repro.datasets.synth import make_multiview_blobs
from repro.exceptions import ValidationError
from repro.observability import Trace, use_trace
from repro.observability.health import (
    HealthMonitor,
    HealthRule,
    default_rule_pack,
    evaluate_rule,
    evaluate_rules,
    load_rules,
    resolve_metric,
    rules_to_dicts,
    weight_entropy,
)
from repro.observability.metrics import MetricsRegistry


def _snapshot(counters=None, gauges=None, histogram_values=None):
    """Build a real registry snapshot from plain dicts."""
    registry = MetricsRegistry()
    for name, value in (counters or {}).items():
        registry.counter(name).inc(value)
    for name, value in (gauges or {}).items():
        registry.gauge(name).set(value)
    for name, values in (histogram_values or {}).items():
        for v in values:
            registry.histogram(name).observe(v)
    return registry.snapshot()


class TestResolveMetric:
    def test_counter_gauge_and_missing(self):
        snap = _snapshot(counters={"a.b": 3}, gauges={"g": 1.5})
        assert resolve_metric(snap, "counter:a.b") == 3.0
        assert resolve_metric(snap, "gauge:g") == 1.5
        assert resolve_metric(snap, "counter:nope") is None
        assert resolve_metric(snap, "gauge:nope") is None

    def test_prefix_glob_sums_the_family(self):
        snap = _snapshot(
            counters={"act.x": 2, "act.y": 3, "other": 99}
        )
        assert resolve_metric(snap, "counter:act.*") == 5.0
        assert resolve_metric(snap, "counter:missing.*") is None

    def test_plus_joins_selector_sums(self):
        snap = _snapshot(counters={"a": 1, "b": 2})
        assert resolve_metric(snap, "counter:a+counter:b") == 3.0

    def test_histogram_stats(self):
        snap = _snapshot(histogram_values={"h": [0.1, 0.2, 0.3, 0.4]})
        assert resolve_metric(snap, "histogram:h:count") == 4.0
        assert resolve_metric(snap, "histogram:h:mean") == pytest.approx(0.25)
        p99 = resolve_metric(snap, "histogram:h:p99")
        assert p99 is not None and p99 >= 0.3

    def test_malformed_selector_raises(self):
        snap = _snapshot()
        with pytest.raises(ValidationError):
            resolve_metric(snap, "bogus:a")
        with pytest.raises(ValidationError):
            resolve_metric(snap, "counter")


class TestRuleValidation:
    def test_unknown_kind_and_severity_rejected(self):
        with pytest.raises(ValidationError):
            HealthRule(name="x", kind="nope", selector="counter:a")
        with pytest.raises(ValidationError):
            HealthRule(
                name="x",
                kind="threshold",
                selector="counter:a",
                max_value=1.0,
                severity="fatal",
            )

    def test_threshold_needs_a_bound_ratio_needs_denominator(self):
        with pytest.raises(ValidationError):
            HealthRule(name="x", kind="threshold", selector="counter:a")
        with pytest.raises(ValidationError):
            HealthRule(
                name="x", kind="ratio", selector="counter:a", max_value=1.0
            )


class TestEvaluation:
    def test_threshold_both_directions(self):
        snap = _snapshot(gauges={"g": 0.5})
        high = HealthRule(
            name="hi", kind="threshold", selector="gauge:g", max_value=0.4
        )
        low = HealthRule(
            name="lo", kind="threshold", selector="gauge:g", min_value=0.6
        )
        ok = HealthRule(
            name="ok",
            kind="threshold",
            selector="gauge:g",
            min_value=0.0,
            max_value=1.0,
        )
        assert evaluate_rule(high, snap).failing
        assert evaluate_rule(low, snap).failing
        assert evaluate_rule(ok, snap).status == "ok"

    def test_missing_metric_skips_not_fails(self):
        snap = _snapshot()
        rule = HealthRule(
            name="x", kind="threshold", selector="gauge:gone", max_value=1.0
        )
        res = evaluate_rule(rule, snap)
        assert res.status == "skipped"
        assert not res.failing

    def test_ratio_semantics(self):
        rule = HealthRule(
            name="rate",
            kind="ratio",
            selector="counter:bad",
            denominator="counter:all",
            max_value=0.1,
        )
        fired = evaluate_rule(rule, _snapshot(counters={"bad": 5, "all": 10}))
        assert fired.failing and fired.value == pytest.approx(0.5)
        # Missing numerator counts as zero when the denominator exists.
        clean = evaluate_rule(rule, _snapshot(counters={"all": 10}))
        assert clean.status == "ok" and clean.value == 0.0
        # Missing/zero denominator skips (no traffic, no verdict).
        assert evaluate_rule(rule, _snapshot()).status == "skipped"

    def test_absence_rule_fails_on_missing(self):
        rule = HealthRule(
            name="must-exist",
            kind="absence",
            selector="counter:beats",
            severity="critical",
        )
        assert evaluate_rule(rule, _snapshot()).failing
        res = evaluate_rule(rule, _snapshot(counters={"beats": 1}))
        assert res.status == "ok"

    def test_rate_of_change_needs_previous(self):
        rule = HealthRule(
            name="spike",
            kind="rate_of_change",
            selector="counter:errs",
            max_value=10.0,
        )
        now = _snapshot(counters={"errs": 100})
        # First sight: nothing to diff against -> skipped.
        assert evaluate_rule(rule, now).status == "skipped"
        prev = _snapshot(counters={"errs": 5})
        res = evaluate_rule(rule, now, previous=prev)
        assert res.failing and res.value == pytest.approx(95.0)

    def test_report_aggregation_and_severity(self):
        rules = [
            HealthRule(
                name="warn",
                kind="threshold",
                selector="gauge:g",
                max_value=0.0,
            ),
            HealthRule(
                name="crit",
                kind="threshold",
                selector="gauge:g",
                max_value=0.0,
                severity="critical",
            ),
        ]
        report = evaluate_rules(rules, _snapshot(gauges={"g": 1.0}))
        assert len(report.failing) == 2
        assert [r.rule.name for r in report.critical_failures] == ["crit"]
        assert not report.ok
        doc = report.to_dict()
        json.dumps(doc)
        assert doc["critical"] is True


class TestRulePack:
    def test_default_pack_names_and_severities(self):
        pack = default_rule_pack()
        names = [r.name for r in pack]
        assert names == [
            "recovery-rate",
            "service-rejection-rate",
            "serving-p99-latency",
            "drift-escalation-frequency",
            "weight-collapse",
            "eigengap-collapse",
        ]
        critical = {r.name for r in pack if r.severity == "critical"}
        assert critical == {"recovery-rate", "service-rejection-rate"}

    def test_load_rules_round_trip(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(
            json.dumps({"rules": rules_to_dicts(default_rule_pack())})
        )
        assert load_rules(path) == default_rule_pack()
        # A bare list is accepted too.
        path.write_text(json.dumps(rules_to_dicts(default_rule_pack())[:2]))
        assert len(load_rules(path)) == 2

    def test_load_rules_rejects_unknown_keys_and_empty(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                [
                    {
                        "name": "x",
                        "kind": "threshold",
                        "selector": "gauge:g",
                        "max_value": 1.0,
                        "surprise": True,
                    }
                ]
            )
        )
        with pytest.raises(ValidationError):
            load_rules(path)
        path.write_text("[]")
        with pytest.raises(ValidationError):
            load_rules(path)


class TestHealthMonitor:
    def test_monitor_carries_previous_snapshot(self):
        registry = MetricsRegistry()
        rule = HealthRule(
            name="growth",
            kind="rate_of_change",
            selector="counter:n",
            max_value=5.0,
            severity="critical",
        )
        monitor = HealthMonitor(registry, rules=[rule])
        registry.counter("n").inc(1)
        assert monitor.check().ok  # first check has no previous
        registry.counter("n").inc(100)
        report = monitor.check()
        assert report.critical_failures
        registry.counter("n").inc(1)
        assert monitor.check().ok  # growth back under the cap


class TestWeightEntropy:
    def test_uniform_collapsed_and_degenerate(self):
        assert weight_entropy([0.5, 0.5]) == pytest.approx(1.0)
        assert weight_entropy([1.0, 0.0, 0.0]) == pytest.approx(0.0)
        assert weight_entropy([1.0]) == 1.0
        assert weight_entropy([]) == 1.0
        mid = weight_entropy([0.7, 0.2, 0.1])
        assert 0.0 < mid < 1.0


class TestNumericalHealthProbes:
    def _views(self):
        return make_multiview_blobs(60, 3, random_state=0)

    def test_traced_umsc_fit_publishes_health_gauges(self):
        data = self._views()
        trace = Trace("probe-test")
        with use_trace(trace):
            UnifiedMVSC(3, random_state=0, max_iter=3).fit(data.views)
        gauges = trace.metrics.snapshot()["gauges"]
        for name in (
            "health.eigengap",
            "health.weight_entropy",
            "health.rotation_residual",
        ):
            assert name in gauges, name
            assert math.isfinite(gauges[name])
        assert 0.0 <= gauges["health.weight_entropy"] <= 1.0

    def test_traced_anchor_fit_publishes_health_gauges(self):
        data = self._views()
        trace = Trace("probe-test-anchor")
        with use_trace(trace):
            AnchorMVSC(
                3, n_anchors=12, random_state=0, max_iter=3, n_restarts=2
            ).fit_predict(data.views)
        gauges = trace.metrics.snapshot()["gauges"]
        for name in (
            "health.eigengap",
            "health.weight_entropy",
            "health.anchor_coverage",
        ):
            assert name in gauges, name
            assert math.isfinite(gauges[name])

    def test_untraced_fit_is_bit_identical(self):
        data = self._views()
        plain = UnifiedMVSC(3, random_state=0, max_iter=3).fit(data.views)
        with use_trace(Trace("identity")):
            traced = UnifiedMVSC(3, random_state=0, max_iter=3).fit(
                data.views
            )
        np.testing.assert_array_equal(plain.labels, traced.labels)


class TestHealthCli:
    def _write_trace(self, tmp_path, faulty):
        from repro.observability import JsonlSink
        from repro.robust import FailurePolicy, use_policy
        from repro.robust.faults import FaultSpec, inject_faults

        data = make_multiview_blobs(60, 3, random_state=0)
        path = tmp_path / ("faulty.jsonl" if faulty else "healthy.jsonl")
        trace = Trace("cli-test", sinks=(JsonlSink(str(path)),))
        with use_trace(trace):
            if faulty:
                with use_policy(FailurePolicy(max_retries=3)):
                    with inject_faults(
                        FaultSpec("eigen.dense", mode="raise", times=2)
                    ):
                        UnifiedMVSC(3, random_state=0, max_iter=3).fit(
                            data.views
                        )
            else:
                UnifiedMVSC(3, random_state=0, max_iter=3).fit(data.views)
        return path

    def test_from_trace_healthy_exits_zero(self, tmp_path):
        path = self._write_trace(tmp_path, faulty=False)
        out = io.StringIO()
        code = main(["health", "check", "--from-trace", str(path)], out=out)
        assert code == 0
        assert "— OK" in out.getvalue()

    @pytest.mark.faults
    def test_from_trace_fault_injected_exits_one(self, tmp_path):
        """Acceptance: recovery-rate fires critical on a fault-injected
        run and the CLI exits nonzero."""
        path = self._write_trace(tmp_path, faulty=True)
        out = io.StringIO()
        json_out = tmp_path / "health.json"
        code = main(
            [
                "health",
                "check",
                "--from-trace",
                str(path),
                "--json",
                str(json_out),
            ],
            out=out,
        )
        assert code == 1
        text = out.getvalue()
        assert "recovery-rate" in text and "— FAIL" in text
        doc = json.loads(json_out.read_text())
        assert doc["ok"] is False and doc["critical"] >= 1

    def test_strict_promotes_warnings(self, tmp_path):
        rules = tmp_path / "rules.json"
        rules.write_text(
            json.dumps(
                [
                    {
                        "name": "gap-floor",
                        "kind": "threshold",
                        "selector": "gauge:health.eigengap",
                        "min_value": 1e9,  # unreachable -> always fails
                    }
                ]
            )
        )
        path = self._write_trace(tmp_path, faulty=False)
        args = ["health", "check", "--from-trace", str(path), "--rules",
                str(rules)]
        assert main(args, out=io.StringIO()) == 0  # warning only
        assert main(args + ["--strict"], out=io.StringIO()) == 1

    def test_unreadable_inputs_exit_two(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["health", "check", "--from-trace", str(tmp_path / "no.jsonl")],
            out=out,
        )
        assert code == 2
        code = main(["health", "check"], out=io.StringIO())
        assert code == 2  # no metrics source at all

    def test_from_bench_evaluates_every_entry(self, tmp_path):
        from repro import bench as bench_mod

        report = bench_mod.run_benches(
            ["graph_build"], quick=True, repeats=1, tag="t", profile=False,
            memory=False,
        )
        path = tmp_path / "BENCH_t.json"
        bench_mod.write_report(report, str(path))
        out = io.StringIO()
        code = main(["health", "check", "--from-bench", str(path)], out=out)
        assert code == 0
        assert "bench:graph_build" in out.getvalue()
