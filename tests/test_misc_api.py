"""Miscellaneous API-surface tests: exceptions, tuning search, reports."""

import numpy as np
import pytest

from repro.core.tuning import tune_umsc
from repro.exceptions import (
    ConvergenceWarning,
    DatasetError,
    NumericalError,
    ReproError,
    ValidationError,
)
from repro.metrics import evaluate_clustering
from repro.metrics.report import METRICS


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ValidationError, NumericalError, DatasetError):
            assert issubclass(exc, ReproError)

    def test_validation_is_value_error(self):
        # Callers using standard numpy idioms can catch ValueError.
        assert issubclass(ValidationError, ValueError)

    def test_dataset_is_key_error(self):
        assert issubclass(DatasetError, KeyError)

    def test_numerical_is_arithmetic_error(self):
        assert issubclass(NumericalError, ArithmeticError)

    def test_convergence_is_warning(self):
        assert issubclass(ConvergenceWarning, UserWarning)


class TestMetricRegistry:
    def test_metrics_registered(self):
        assert set(METRICS) == {
            "acc",
            "nmi",
            "purity",
            "ari",
            "fscore",
            "homogeneity",
            "completeness",
            "vmeasure",
        }

    def test_default_trio(self):
        scores = evaluate_clustering([0, 1], [0, 1])
        assert set(scores) == {"acc", "nmi", "purity"}

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValidationError, match="unknown metrics"):
            evaluate_clustering([0, 1], [0, 1], metrics=("acc", "vibes"))


class TestTuneUMSC:
    def test_tiny_grid_search(self, small_dataset):
        result = tune_umsc(
            small_dataset,
            grid={"lam": [1.0], "consensus": [0.0, 1.0]},
            metric="acc",
        )
        assert len(result.points) == 2
        best = result.best("acc")
        assert best.params["consensus"] in (0.0, 1.0)
        assert 0.0 <= best.scores["acc"] <= 1.0

    def test_best_reflects_scores(self, small_dataset):
        result = tune_umsc(
            small_dataset, grid={"n_neighbors": [6, 10]}, metric="acc"
        )
        best = result.best("acc")
        assert best.scores["acc"] == max(
            p.scores["acc"] for p in result.points
        )


class TestUMSCResultType:
    def test_objective_nan_when_no_history(self):
        import math

        import numpy as np

        from repro.core.result import UMSCResult

        result = UMSCResult(
            labels=np.array([0, 1]),
            indicator=np.eye(2),
            embedding=np.eye(2),
            rotation=np.eye(2),
            view_weights=np.array([1.0]),
        )
        assert math.isnan(result.objective)

    def test_frozen(self):
        import numpy as np
        import pytest as _pytest

        from repro.core.result import UMSCResult

        result = UMSCResult(
            labels=np.array([0]),
            indicator=np.ones((1, 1)),
            embedding=np.ones((1, 1)),
            rotation=np.ones((1, 1)),
            view_weights=np.array([1.0]),
        )
        with _pytest.raises(AttributeError):
            result.n_iter = 5


class TestGPIResultType:
    def test_fields(self):
        import numpy as np

        from repro.linalg.gpi import gpi_stiefel

        a = np.eye(4)
        b = np.zeros((4, 2))
        res = gpi_stiefel(a, b, max_iter=2)
        assert isinstance(res.history, list)
        assert res.f.shape == (4, 2)
