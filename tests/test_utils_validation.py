"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.validation import (
    check_labels,
    check_matrix,
    check_square,
    check_symmetric,
    check_views,
)


class TestCheckMatrix:
    def test_converts_to_float64(self):
        out = check_matrix([[1, 2], [3, 4]])
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValidationError, match="2-D"):
            check_matrix([1.0, 2.0])

    def test_rejects_3d(self):
        with pytest.raises(ValidationError):
            check_matrix(np.zeros((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN or Inf"):
            check_matrix([[np.nan, 0.0]])

    def test_allows_nonfinite_when_asked(self):
        out = check_matrix([[np.inf, 0.0]], allow_nonfinite=True)
        assert np.isinf(out[0, 0])

    def test_min_dims_enforced(self):
        with pytest.raises(ValidationError, match="at least"):
            check_matrix(np.zeros((1, 3)), min_rows=2)

    def test_name_in_error(self):
        with pytest.raises(ValidationError, match="myarg"):
            check_matrix([1.0], name="myarg")

    def test_default_coerces_float32_to_float64(self):
        out = check_matrix(np.ones((2, 2), dtype=np.float32))
        assert out.dtype == np.float64

    def test_dtype_none_preserves_float32(self):
        x32 = np.ones((2, 2), dtype=np.float32)
        out = check_matrix(x32, dtype=None)
        assert out.dtype == np.float32

    def test_dtype_none_preserves_float64_without_copy(self):
        x64 = np.ones((3, 2))
        out = check_matrix(x64, dtype=None)
        assert out.dtype == np.float64
        assert out is x64 or np.shares_memory(out, x64)

    def test_dtype_none_still_coerces_integers(self):
        out = check_matrix([[1, 2], [3, 4]], dtype=None)
        assert out.dtype == np.float64

    def test_dtype_none_still_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN or Inf"):
            check_matrix(
                np.array([[np.nan, 0.0]], dtype=np.float32), dtype=None
            )


class TestCheckSquare:
    def test_accepts_square(self):
        assert check_square(np.eye(3)).shape == (3, 3)

    def test_rejects_rectangular(self):
        with pytest.raises(ValidationError, match="square"):
            check_square(np.zeros((2, 3)))


class TestCheckSymmetric:
    def test_repairs_tiny_asymmetry(self):
        a = np.array([[0.0, 1.0], [1.0 + 1e-12, 0.0]])
        out = check_symmetric(a)
        np.testing.assert_allclose(out, out.T)

    def test_rejects_large_asymmetry(self):
        a = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValidationError, match="symmetric"):
            check_symmetric(a)


class TestCheckLabels:
    def test_int_array_passthrough(self):
        out = check_labels([0, 1, 2, 1])
        assert out.dtype == np.int64

    def test_float_integers_accepted(self):
        out = check_labels(np.array([0.0, 1.0, 2.0]))
        np.testing.assert_array_equal(out, [0, 1, 2])

    def test_fractional_floats_rejected(self):
        with pytest.raises(ValidationError, match="integers"):
            check_labels([0.5, 1.0])

    def test_length_check(self):
        with pytest.raises(ValidationError, match="length 4"):
            check_labels([0, 1], n=4)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            check_labels([])

    def test_2d_rejected(self):
        with pytest.raises(ValidationError, match="1-D"):
            check_labels([[0, 1]])


class TestCheckViews:
    def test_list_of_matrices(self):
        out = check_views([np.zeros((4, 2)), np.zeros((4, 3))])
        assert len(out) == 2

    def test_single_matrix_wrapped(self):
        out = check_views(np.zeros((4, 2)))
        assert len(out) == 1

    def test_row_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="same number of rows"):
            check_views([np.zeros((4, 2)), np.zeros((5, 2))])

    def test_min_views(self):
        with pytest.raises(ValidationError, match="at least 2"):
            check_views([np.zeros((4, 2))], min_views=2)

    def test_non_sequence_rejected(self):
        with pytest.raises(ValidationError):
            check_views(42)
