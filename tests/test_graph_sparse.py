"""Tests for repro.graph.sparse."""

import numpy as np
import pytest
import scipy.sparse

from repro.exceptions import ValidationError
from repro.graph.sparse import (
    sparse_knn_affinity,
    sparse_laplacian,
    sparse_spectral_embedding,
)


def _blobs(n_per=30, sep=12.0, seed=0):
    rng = np.random.default_rng(seed)
    return np.vstack(
        [rng.normal(size=(n_per, 3)) + sep * i for i in range(3)]
    )


class TestSparseKnnAffinity:
    def test_structure(self):
        x = _blobs()
        w = sparse_knn_affinity(x, k=8)
        assert scipy.sparse.issparse(w)
        assert w.shape == (90, 90)
        assert (abs(w - w.T) > 1e-12).nnz == 0
        assert w.diagonal().max() == 0.0
        assert w.data.min() >= 0.0

    def test_sparsity_bound(self):
        w = sparse_knn_affinity(_blobs(), k=5)
        # Union symmetrization: every row keeps its k outgoing edges, and
        # the *average* degree is bounded by 2k (hubs may exceed it).
        row_nnz = np.diff(w.indptr)
        assert row_nnz.min() >= 5
        assert row_nnz.mean() <= 10

    def test_blocks_do_not_change_result(self):
        x = _blobs(seed=1)
        a = sparse_knn_affinity(x, k=6, block=7)
        b = sparse_knn_affinity(x, k=6, block=512)
        assert (abs(a - b) > 1e-12).nnz == 0

    def test_separates_far_blobs(self):
        x = _blobs(sep=50.0, seed=2)
        w = sparse_knn_affinity(x, k=5)
        dense = w.toarray()
        assert dense[:30, 30:].max() == 0.0

    def test_agrees_with_dense_recipe_on_kept_edges(self):
        from repro.graph.affinity import self_tuning_affinity

        x = _blobs(seed=3)
        sparse_w = sparse_knn_affinity(x, k=8, scale_rank=7).toarray()
        dense_w = self_tuning_affinity(x, k=7)
        kept = sparse_w > 0
        np.testing.assert_allclose(sparse_w[kept], dense_w[kept], rtol=1e-8)

    def test_validation(self):
        with pytest.raises(ValidationError):
            sparse_knn_affinity(np.zeros((1, 2)))
        with pytest.raises(ValidationError):
            sparse_knn_affinity(_blobs(), block=0)


class TestSparseLaplacian:
    def _w(self):
        return sparse_knn_affinity(_blobs(seed=4), k=6)

    def test_matches_dense_laplacian(self):
        from repro.graph.laplacian import laplacian

        w = self._w()
        for norm in ("symmetric", "unnormalized", "random_walk"):
            sparse_lap = sparse_laplacian(w, normalization=norm).toarray()
            dense_lap = laplacian(w.toarray(), normalization=norm)
            np.testing.assert_allclose(sparse_lap, dense_lap, atol=1e-10)

    def test_psd_symmetric(self):
        lap = sparse_laplacian(self._w()).toarray()
        values = np.linalg.eigvalsh(lap)
        assert values.min() >= -1e-10
        assert values.max() <= 2.0 + 1e-10

    def test_validation(self):
        with pytest.raises(ValidationError, match="scipy sparse"):
            sparse_laplacian(np.eye(3))
        asym = scipy.sparse.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))
        with pytest.raises(ValidationError, match="symmetric"):
            sparse_laplacian(asym)


class TestSparseSpectralEmbedding:
    def test_clusters_recoverable(self):
        from repro.cluster.kmeans import KMeans
        from repro.metrics import clustering_accuracy

        x = _blobs(sep=20.0, seed=5)
        w = sparse_knn_affinity(x, k=7)
        emb = sparse_spectral_embedding(w, 3)
        labels = KMeans(3, random_state=0).fit_predict(emb)
        truth = np.repeat(np.arange(3), 30)
        assert clustering_accuracy(truth, labels) > 0.95

    def test_matches_dense_subspace(self):
        from repro.cluster.spectral import spectral_embedding

        x = _blobs(seed=6)
        w = sparse_knn_affinity(x, k=8)
        sparse_emb = sparse_spectral_embedding(w, 3, row_normalize=False)
        dense_emb = spectral_embedding(w.toarray(), 3, row_normalize=False)
        # Same subspace: projector distance ~ 0.
        p_sparse = sparse_emb @ sparse_emb.T
        p_dense = dense_emb @ dense_emb.T
        assert np.max(np.abs(p_sparse - p_dense)) < 1e-6

    def test_validation(self):
        w = sparse_knn_affinity(_blobs(seed=7), k=5)
        with pytest.raises(ValidationError):
            sparse_spectral_embedding(w, 0)
