"""Tests for repro.core.model (the unified framework)."""

import warnings

import numpy as np
import pytest

from repro.core.discrete import scaled_indicator
from repro.core.model import UnifiedMVSC
from repro.exceptions import ConvergenceWarning, ValidationError
from repro.linalg.checks import is_orthonormal
from repro.metrics import clustering_accuracy


class TestUnifiedMVSC:
    def test_recovers_easy_clusters(self, small_dataset):
        result = UnifiedMVSC(3, random_state=0).fit(small_dataset.views)
        assert clustering_accuracy(small_dataset.labels, result.labels) > 0.95

    def test_result_invariants(self, small_dataset):
        result = UnifiedMVSC(3, random_state=0).fit(small_dataset.views)
        n = small_dataset.n_samples
        # Discrete indicator: one-hot rows, no empty cluster.
        assert result.indicator.shape == (n, 3)
        np.testing.assert_allclose(result.indicator.sum(axis=1), 1.0)
        assert np.all(result.indicator.sum(axis=0) >= 1)
        # Labels read directly off Y.
        np.testing.assert_array_equal(
            result.labels, np.argmax(result.indicator, axis=1)
        )
        # Embedding orthonormal, rotation orthogonal.
        assert is_orthonormal(result.embedding, tol=1e-6)
        assert is_orthonormal(result.rotation, tol=1e-6)
        # Weights valid.
        assert result.view_weights.shape == (2,)
        assert np.all(result.view_weights > 0)

    def test_objective_monotone_up_to_w_step(self, small_dataset):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            result = UnifiedMVSC(3, max_iter=30, tol=1e-12, random_state=0).fit(
                small_dataset.views
            )
        h = result.objective_history
        # F/R/Y blocks descend exactly; the IRLS w-step may perturb the
        # objective slightly, hence the relative tolerance.
        for a, b in zip(h, h[1:]):
            assert b <= a + 1e-3 * max(1.0, abs(a))

    def test_deterministic_given_seed(self, medium_dataset):
        a = UnifiedMVSC(4, random_state=3).fit(medium_dataset.views)
        b = UnifiedMVSC(4, random_state=3).fit(medium_dataset.views)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_weighting_modes_all_work(self, small_dataset):
        for mode in ("exponential", "parameter_free", "uniform"):
            result = UnifiedMVSC(
                3, weighting=mode, random_state=0
            ).fit(small_dataset.views)
            assert clustering_accuracy(small_dataset.labels, result.labels) > 0.9

    def test_lam_zero_is_spectral_rotation(self, small_dataset):
        result = UnifiedMVSC(3, lam=0.0, random_state=0).fit(small_dataset.views)
        assert clustering_accuracy(small_dataset.labels, result.labels) > 0.9

    def test_fit_affinities_direct(self, affinity_pair, small_dataset):
        result = UnifiedMVSC(3, random_state=0).fit_affinities(affinity_pair)
        assert clustering_accuracy(small_dataset.labels, result.labels) > 0.9

    def test_noisy_view_downweighted(self, rng):
        from repro.datasets.synth import make_multiview_blobs

        ds = make_multiview_blobs(
            120,
            3,
            view_dims=(15, 15),
            view_noise=(0.05, 3.0),  # second view is garbage
            view_distractors=(0.0, 0.5),
            view_outliers=(0.0, 0.2),
            separation=6.0,
            random_state=17,
        )
        result = UnifiedMVSC(3, gamma=1.5, random_state=0).fit(ds.views)
        assert result.view_weights[0] > result.view_weights[1]

    def test_convergence_warning_when_capped(self, medium_dataset):
        with pytest.warns(ConvergenceWarning):
            UnifiedMVSC(4, max_iter=1, tol=1e-15, random_state=0).fit(
                medium_dataset.views
            )

    def test_single_view_works(self, small_dataset):
        result = UnifiedMVSC(3, random_state=0).fit([small_dataset.views[0]])
        assert clustering_accuracy(small_dataset.labels, result.labels) > 0.9

    def test_validation(self, small_dataset):
        with pytest.raises(ValidationError, match="exceeds"):
            UnifiedMVSC(1000).fit(small_dataset.views)
        with pytest.raises(ValidationError, match="non-empty"):
            UnifiedMVSC(2).fit_affinities([])
        with pytest.raises(ValidationError, match="n_restarts"):
            UnifiedMVSC(2, n_restarts=0)

    def test_n_iter_and_history_lengths_agree(self, small_dataset):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            result = UnifiedMVSC(3, max_iter=5, tol=1e-15, random_state=0).fit(
                small_dataset.views
            )
        assert result.n_iter == len(result.objective_history) == 5

    def test_final_objective_property(self, small_dataset):
        result = UnifiedMVSC(3, random_state=0).fit(small_dataset.views)
        assert result.objective == result.objective_history[-1]

    def test_indicator_matches_scaled_form(self, small_dataset):
        result = UnifiedMVSC(3, random_state=0).fit(small_dataset.views)
        g = scaled_indicator(result.labels, 3)
        counts = np.bincount(result.labels, minlength=3)
        np.testing.assert_allclose(
            g.sum(axis=0), np.sqrt(counts), atol=1e-10
        )
