"""Tests for repro.linalg.gpi (generalized power iteration)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.linalg.gpi import gpi_stiefel


def _random_symmetric(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return (a + a.T) / 2.0


class TestGPIStiefel:
    def test_result_orthonormal(self):
        a = _random_symmetric(12)
        b = np.random.default_rng(1).normal(size=(12, 3))
        res = gpi_stiefel(a, b)
        np.testing.assert_allclose(res.f.T @ res.f, np.eye(3), atol=1e-9)

    def test_objective_monotone(self):
        a = _random_symmetric(15, seed=2)
        b = np.random.default_rng(3).normal(size=(15, 4))
        res = gpi_stiefel(a, b, max_iter=60)
        h = res.history
        assert all(h[i + 1] <= h[i] + 1e-9 for i in range(len(h) - 1))

    def test_zero_linear_term_matches_eigenvectors(self):
        # With B = 0 the minimizer spans the bottom eigenspace; the
        # objective equals the sum of the k smallest eigenvalues.
        a = _random_symmetric(10, seed=4)
        res = gpi_stiefel(a, np.zeros((10, 3)), max_iter=3000, tol=1e-14)
        target = np.linalg.eigvalsh(a)[:3].sum()
        assert res.objective == pytest.approx(target, abs=1e-4)

    def test_beats_random_feasible_points(self):
        a = _random_symmetric(12, seed=5)
        rng = np.random.default_rng(6)
        b = rng.normal(size=(12, 3))
        res = gpi_stiefel(a, b, max_iter=200)

        def obj(f):
            return np.trace(f.T @ a @ f) - 2 * np.trace(f.T @ b)

        for seed in range(10):
            q, _ = np.linalg.qr(np.random.default_rng(seed).normal(size=(12, 3)))
            assert res.objective <= obj(q) + 1e-8

    def test_warm_start_respected(self):
        a = _random_symmetric(8, seed=7)
        b = np.random.default_rng(8).normal(size=(8, 2))
        q, _ = np.linalg.qr(np.random.default_rng(9).normal(size=(8, 2)))
        res = gpi_stiefel(a, b, f0=q, max_iter=1)
        assert res.n_iter == 1

    def test_shape_validation(self):
        a = _random_symmetric(5)
        with pytest.raises(ValidationError, match="disagree"):
            gpi_stiefel(a, np.zeros((6, 2)))
        with pytest.raises(ValidationError, match="exceeds"):
            gpi_stiefel(a, np.zeros((5, 9)))
        with pytest.raises(ValidationError, match="f0"):
            gpi_stiefel(a, np.zeros((5, 2)), f0=np.zeros((5, 3)))

    def test_converged_flag(self):
        a = _random_symmetric(6, seed=10)
        b = np.random.default_rng(11).normal(size=(6, 2))
        res = gpi_stiefel(a, b, max_iter=500, tol=1e-10)
        assert res.converged
        res_short = gpi_stiefel(a, b, max_iter=1, tol=1e-16)
        assert not res_short.converged


class TestGPIIndefiniteOperator:
    def test_monotone_with_projector_subtraction(self):
        # The production operator A = L - beta * UU^T is indefinite; the
        # Gershgorin shift must still make GPI monotone.
        rng = np.random.default_rng(12)
        n, c = 25, 3
        w = np.abs(rng.normal(size=(n, n)))
        w = (w + w.T) / 2.0
        np.fill_diagonal(w, 0.0)
        from repro.graph.laplacian import laplacian

        lap = laplacian(w)
        u, _ = np.linalg.qr(rng.normal(size=(n, c)))
        a = lap - 2.0 * (u @ u.T)
        assert np.linalg.eigvalsh(a)[0] < 0  # genuinely indefinite
        b = rng.normal(size=(n, c))
        res = gpi_stiefel(a, b, max_iter=80)
        h = res.history
        assert all(h[i + 1] <= h[i] + 1e-9 for i in range(len(h) - 1))
        np.testing.assert_allclose(res.f.T @ res.f, np.eye(c), atol=1e-9)
