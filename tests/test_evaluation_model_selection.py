"""Tests for repro.evaluation.model_selection (label-free tuning)."""

import pytest

from repro.evaluation.model_selection import (
    DEFAULT_UNSUPERVISED_GRID,
    select_umsc_unsupervised,
)
from repro.exceptions import ValidationError
from repro.metrics import clustering_accuracy


class TestSelectUMSCUnsupervised:
    def test_selects_reasonable_config(self, small_dataset):
        result = select_umsc_unsupervised(
            small_dataset.views,
            3,
            grid={"consensus": [0.0, 1.0], "n_neighbors": [8]},
        )
        assert result.best_silhouette > 0.0
        assert len(result.points) == 2
        model = result.build(3, random_state=0)
        fitted = model.fit(small_dataset.views)
        assert clustering_accuracy(small_dataset.labels, fitted.labels) > 0.9

    def test_best_is_argmax(self, small_dataset):
        result = select_umsc_unsupervised(
            small_dataset.views, 3, grid={"n_neighbors": [6, 12]}
        )
        assert result.best_silhouette == max(
            p.silhouette for p in result.points
        )

    def test_default_grid_nonempty(self):
        assert DEFAULT_UNSUPERVISED_GRID

    def test_empty_grid_rejected(self, small_dataset):
        with pytest.raises(ValidationError):
            select_umsc_unsupervised(small_dataset.views, 3, grid={})
