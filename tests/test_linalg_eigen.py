"""Tests for repro.linalg.eigen."""

import numpy as np
import pytest
import scipy.sparse

from repro.exceptions import ValidationError
from repro.linalg.eigen import eigsh_largest, eigsh_smallest, sorted_eigh


def _random_symmetric(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return (a + a.T) / 2.0


class TestSortedEigh:
    def test_matches_numpy(self):
        a = _random_symmetric(12)
        values, vectors = sorted_eigh(a)
        np.testing.assert_allclose(values, np.linalg.eigvalsh(a), atol=1e-10)
        np.testing.assert_allclose(a @ vectors, vectors * values, atol=1e-8)

    def test_ascending(self):
        values, _ = sorted_eigh(_random_symmetric(9, seed=3))
        assert np.all(np.diff(values) >= -1e-12)


class TestEigshSmallest:
    def test_values_and_residual(self):
        a = _random_symmetric(15, seed=1)
        values, vectors = eigsh_smallest(a, 4)
        full = np.linalg.eigvalsh(a)
        np.testing.assert_allclose(values, full[:4], atol=1e-10)
        np.testing.assert_allclose(a @ vectors, vectors * values, atol=1e-8)

    def test_orthonormal_vectors(self):
        _, vectors = eigsh_smallest(_random_symmetric(10, seed=2), 3)
        np.testing.assert_allclose(vectors.T @ vectors, np.eye(3), atol=1e-10)

    def test_k_equals_n(self):
        a = _random_symmetric(6, seed=4)
        values, _ = eigsh_smallest(a, 6)
        np.testing.assert_allclose(values, np.linalg.eigvalsh(a), atol=1e-10)

    def test_invalid_k(self):
        a = _random_symmetric(5)
        with pytest.raises(ValidationError):
            eigsh_smallest(a, 0)
        with pytest.raises(ValidationError):
            eigsh_smallest(a, 6)

    def test_sparse_input(self):
        a = _random_symmetric(20, seed=5)
        sp = scipy.sparse.csr_matrix(a)
        values, _ = eigsh_smallest(sp, 3)
        np.testing.assert_allclose(values, np.linalg.eigvalsh(a)[:3], atol=1e-8)


class TestEigshLargest:
    def test_values_descending(self):
        a = _random_symmetric(15, seed=6)
        values, vectors = eigsh_largest(a, 4)
        full = np.linalg.eigvalsh(a)
        np.testing.assert_allclose(values, full[::-1][:4], atol=1e-10)
        np.testing.assert_allclose(a @ vectors, vectors * values, atol=1e-8)

    def test_agrees_with_negated_smallest(self):
        a = _random_symmetric(12, seed=7)
        large, _ = eigsh_largest(a, 3)
        small_of_neg, _ = eigsh_smallest(-a, 3)
        np.testing.assert_allclose(large, -small_of_neg, atol=1e-10)
