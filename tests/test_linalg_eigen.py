"""Tests for repro.linalg.eigen."""

import numpy as np
import pytest
import scipy.sparse
import scipy.sparse.linalg

import repro.linalg.eigen as eigen_mod
from repro.exceptions import NumericalError, ValidationError
from repro.linalg.eigen import eigsh_largest, eigsh_smallest, sorted_eigh
from repro.observability import Trace, use_trace


def _random_symmetric(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return (a + a.T) / 2.0


class TestSortedEigh:
    def test_matches_numpy(self):
        a = _random_symmetric(12)
        values, vectors = sorted_eigh(a)
        np.testing.assert_allclose(values, np.linalg.eigvalsh(a), atol=1e-10)
        np.testing.assert_allclose(a @ vectors, vectors * values, atol=1e-8)

    def test_ascending(self):
        values, _ = sorted_eigh(_random_symmetric(9, seed=3))
        assert np.all(np.diff(values) >= -1e-12)


class TestEigshSmallest:
    def test_values_and_residual(self):
        a = _random_symmetric(15, seed=1)
        values, vectors = eigsh_smallest(a, 4)
        full = np.linalg.eigvalsh(a)
        np.testing.assert_allclose(values, full[:4], atol=1e-10)
        np.testing.assert_allclose(a @ vectors, vectors * values, atol=1e-8)

    def test_orthonormal_vectors(self):
        _, vectors = eigsh_smallest(_random_symmetric(10, seed=2), 3)
        np.testing.assert_allclose(vectors.T @ vectors, np.eye(3), atol=1e-10)

    def test_k_equals_n(self):
        a = _random_symmetric(6, seed=4)
        values, _ = eigsh_smallest(a, 6)
        np.testing.assert_allclose(values, np.linalg.eigvalsh(a), atol=1e-10)

    def test_invalid_k(self):
        a = _random_symmetric(5)
        with pytest.raises(ValidationError):
            eigsh_smallest(a, 0)
        with pytest.raises(ValidationError):
            eigsh_smallest(a, 6)

    def test_sparse_input(self):
        a = _random_symmetric(20, seed=5)
        sp = scipy.sparse.csr_matrix(a)
        values, _ = eigsh_smallest(sp, 3)
        np.testing.assert_allclose(values, np.linalg.eigvalsh(a)[:3], atol=1e-8)


class TestEigshLargest:
    def test_values_descending(self):
        a = _random_symmetric(15, seed=6)
        values, vectors = eigsh_largest(a, 4)
        full = np.linalg.eigvalsh(a)
        np.testing.assert_allclose(values, full[::-1][:4], atol=1e-10)
        np.testing.assert_allclose(a @ vectors, vectors * values, atol=1e-8)

    def test_agrees_with_negated_smallest(self):
        a = _random_symmetric(12, seed=7)
        large, _ = eigsh_largest(a, 3)
        small_of_neg, _ = eigsh_smallest(-a, 3)
        np.testing.assert_allclose(large, -small_of_neg, atol=1e-10)


class TestArpackFallback:
    """ARPACK non-convergence falls back to the dense path."""

    @pytest.fixture()
    def lanczos_always_fails(self, monkeypatch):
        # Force the sparse branch for tiny matrices, then make ARPACK
        # "fail to converge" every time.
        monkeypatch.setattr(eigen_mod, "_DENSE_CUTOFF", 0)

        def _no_convergence(*args, **kwargs):
            raise scipy.sparse.linalg.ArpackNoConvergence(
                "ARPACK error -1: no convergence", np.array([]), np.array([])
            )

        monkeypatch.setattr(scipy.sparse.linalg, "eigsh", _no_convergence)

    def test_smallest_falls_back_to_dense(self, lanczos_always_fails):
        a = _random_symmetric(20, seed=8)
        sp = scipy.sparse.csr_matrix(a)
        values, vectors = eigsh_smallest(sp, 3)
        np.testing.assert_allclose(values, np.linalg.eigvalsh(a)[:3], atol=1e-8)
        np.testing.assert_allclose(a @ vectors, vectors * values, atol=1e-8)

    def test_largest_falls_back_to_dense(self, lanczos_always_fails):
        a = _random_symmetric(20, seed=9)
        sp = scipy.sparse.csr_matrix(a)
        values, _ = eigsh_largest(sp, 3)
        np.testing.assert_allclose(
            values, np.linalg.eigvalsh(a)[::-1][:3], atol=1e-8
        )

    def test_fallback_counted(self, lanczos_always_fails):
        a = _random_symmetric(15, seed=10)
        sp = scipy.sparse.csr_matrix(a)
        trace = Trace("test")
        with use_trace(trace):
            eigsh_smallest(sp, 2)
        assert trace.metrics.counter("eigsh.arpack_fallback").value == 1.0

    def test_raises_numerical_error_when_dense_also_fails(
        self, lanczos_always_fails, monkeypatch
    ):
        def _dense_fails(*args, **kwargs):
            raise RuntimeError("LAPACK exploded")

        monkeypatch.setattr(eigen_mod, "_dense_extremal", _dense_fails)
        sp = scipy.sparse.csr_matrix(_random_symmetric(15, seed=11))
        with pytest.raises(NumericalError, match="dense fallback also failed"):
            eigsh_smallest(sp, 2)

    def test_no_fallback_counter_on_clean_run(self):
        a = _random_symmetric(12, seed=12)
        trace = Trace("test")
        with use_trace(trace):
            eigsh_smallest(a, 2)
        assert "eigsh.arpack_fallback" not in trace.metrics.counters
