"""Tests for repro.linalg.procrustes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NumericalError
from repro.linalg.procrustes import nearest_orthogonal, orthogonal_procrustes


def _random_orthogonal(c, seed=0):
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.normal(size=(c, c)))
    return q


class TestNearestOrthogonal:
    def test_output_is_orthonormal(self):
        rng = np.random.default_rng(0)
        m = rng.normal(size=(8, 3))
        q = nearest_orthogonal(m)
        np.testing.assert_allclose(q.T @ q, np.eye(3), atol=1e-10)

    def test_orthogonal_input_fixed_point(self):
        q = _random_orthogonal(4)
        np.testing.assert_allclose(nearest_orthogonal(q), q, atol=1e-10)

    def test_maximizes_trace(self):
        # tr(Q^T M) at the polar factor equals the nuclear norm of M, an
        # upper bound for any orthonormal Q.
        rng = np.random.default_rng(1)
        m = rng.normal(size=(6, 4))
        q = nearest_orthogonal(m)
        nuclear = np.linalg.svd(m, compute_uv=False).sum()
        assert np.trace(q.T @ m) == pytest.approx(nuclear, abs=1e-8)
        other = nearest_orthogonal(rng.normal(size=(6, 4)))
        assert np.trace(other.T @ m) <= nuclear + 1e-8

    def test_wide_matrix_rejected(self):
        with pytest.raises(NumericalError, match="p >= q"):
            nearest_orthogonal(np.zeros((2, 5)))

    @settings(deadline=None, max_examples=25)
    @given(st.integers(1, 6), st.integers(0, 1000))
    def test_property_orthonormal_columns(self, q_dim, seed):
        rng = np.random.default_rng(seed)
        m = rng.normal(size=(q_dim + 3, q_dim))
        out = nearest_orthogonal(m)
        assert np.max(np.abs(out.T @ out - np.eye(q_dim))) < 1e-8


class TestOrthogonalProcrustes:
    def test_recovers_rotation(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(20, 4))
        r_true = _random_orthogonal(4, seed=3)
        b = a @ r_true
        r = orthogonal_procrustes(a, b)
        np.testing.assert_allclose(r, r_true, atol=1e-8)

    def test_result_is_orthogonal(self):
        rng = np.random.default_rng(4)
        r = orthogonal_procrustes(rng.normal(size=(10, 3)), rng.normal(size=(10, 3)))
        np.testing.assert_allclose(r.T @ r, np.eye(3), atol=1e-10)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(NumericalError, match="same shape"):
            orthogonal_procrustes(np.zeros((4, 2)), np.zeros((4, 3)))

    def test_optimality_against_random_rotations(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(15, 3))
        b = rng.normal(size=(15, 3))
        r = orthogonal_procrustes(a, b)
        best = np.linalg.norm(a @ r - b)
        for seed in range(20):
            other = _random_orthogonal(3, seed=seed)
            assert best <= np.linalg.norm(a @ other - b) + 1e-8
