"""Streaming subsystem: fold-in, drift detection, stream generation, serving adapt."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from io import StringIO

import numpy as np
import pytest

import repro
from repro.cli import main
from repro.core.anchor_model import AnchorMVSC
from repro.core.config import StreamingConfig, UMSCConfig
from repro.datasets.scenarios import (
    StreamDrift,
    get_scenario,
    stream_batches,
)
from repro.exceptions import ValidationError
from repro.metrics import adjusted_rand_index
from repro.serving import ModelArtifact, Predictor
from repro.streaming import (
    BatchStats,
    DriftDecision,
    DriftDetector,
    ObjectiveShiftDetector,
    StreamingMVSC,
    ViewWeightShiftDetector,
    worst_decision,
)

#: The deterministic drifted stream the integration tests share: the
#: shift batch is a documented contract (the detector must fire there,
#: and only there).
SHIFT_BATCH = 5


def _drifted_stream(n_batches=8, batch_size=150, seed=0):
    """The shared test stream; short streams simply end before the shift."""
    scenario = get_scenario("confused_pairs").with_size(batch_size)
    drift = (
        StreamDrift(at_batch=SHIFT_BATCH, mean_shift=4.0, imbalance=5.0)
        if SHIFT_BATCH < n_batches
        else None
    )
    return scenario, stream_batches(
        scenario, n_batches, drift=drift, random_state=seed
    )


def _stats(index=1, objective=1.0, batch_cost=1.0, weights=(0.5, 0.5)):
    return BatchStats(
        batch_index=index,
        n_new=50,
        n_total=50 * (index + 1),
        objective=objective,
        batch_cost=batch_cost,
        view_weights=tuple(weights),
    )


class TestStreamBatches:
    def test_deterministic(self):
        scenario = get_scenario("confused_pairs").with_size(60)
        a = stream_batches(scenario, 3, random_state=1)
        b = stream_batches(scenario, 3, random_state=1)
        for ba, bb in zip(a, b):
            np.testing.assert_array_equal(ba.labels, bb.labels)
            for va, vb in zip(ba.views, bb.views):
                np.testing.assert_array_equal(va, vb)

    def test_shapes_and_flags(self):
        scenario = get_scenario("confused_pairs").with_size(60)
        drift = StreamDrift(at_batch=2, mean_shift=2.0)
        batches = stream_batches(scenario, 4, drift=drift, random_state=0)
        assert [b.index for b in batches] == [0, 1, 2, 3]
        assert [b.drifted for b in batches] == [False, False, True, True]
        for b in batches:
            assert b.n_samples == 60
            assert len(b.views) == scenario.n_views
            assert all(v.shape[0] == 60 for v in b.views)
            assert b.labels.shape == (60,)

    def test_disabling_drift_keeps_predrift_batches_bit_identical(self):
        scenario = get_scenario("confused_pairs").with_size(60)
        drift = StreamDrift(at_batch=2, mean_shift=3.0)
        with_drift = stream_batches(scenario, 4, drift=drift, random_state=0)
        without = stream_batches(scenario, 4, random_state=0)
        for i in range(2):
            for va, vb in zip(with_drift[i].views, without[i].views):
                np.testing.assert_array_equal(va, vb)
        assert any(
            not np.array_equal(va, vb)
            for va, vb in zip(with_drift[2].views, without[2].views)
        )

    def test_imbalance_drift_changes_label_histogram(self):
        scenario = get_scenario("confused_pairs").with_size(120)
        drift = StreamDrift(at_batch=1, mean_shift=0.0, imbalance=6.0)
        batches = stream_batches(scenario, 2, drift=drift, random_state=0)
        before = np.bincount(batches[0].labels, minlength=scenario.n_clusters)
        after = np.bincount(batches[1].labels, minlength=scenario.n_clusters)
        assert np.ptp(before) < np.ptp(after)

    def test_rejects_unstreamable_scenarios(self):
        with pytest.raises(ValidationError, match="stream"):
            stream_batches("missing_views", 3)

    def test_validates_drift_and_counts(self):
        scenario = get_scenario("confused_pairs").with_size(60)
        with pytest.raises(ValidationError):
            stream_batches(scenario, 0)
        with pytest.raises(ValidationError, match="at_batch"):
            stream_batches(
                scenario, 3, drift=StreamDrift(at_batch=3, mean_shift=1.0)
            )
        with pytest.raises(ValidationError):
            StreamDrift(at_batch=0, mean_shift=1.0)
        with pytest.raises(ValidationError):
            StreamDrift(at_batch=1, mean_shift=-1.0)
        with pytest.raises(ValidationError):
            StreamDrift(at_batch=1, imbalance=0.5)


class TestPartialFit:
    def test_first_call_equals_fit_predict(self):
        _, batches = _drifted_stream(n_batches=1, batch_size=80)
        a = AnchorMVSC(4, random_state=0).fit_predict(batches[0].views)
        model = AnchorMVSC(4, random_state=0)
        b = model.partial_fit(batches[0].views)
        np.testing.assert_array_equal(a, b)

    def test_determinism_across_replays(self):
        _, batches = _drifted_stream(n_batches=3, batch_size=80)

        def replay():
            model = AnchorMVSC(4, random_state=0)
            for batch in batches:
                labels = model.partial_fit(batch.views)
            return labels

        np.testing.assert_array_equal(replay(), replay())

    def test_fold_in_tracks_full_fit(self):
        scenario, batches = _drifted_stream(n_batches=3, batch_size=100)
        truth = np.concatenate([b.labels for b in batches])
        model = AnchorMVSC(scenario.n_clusters, random_state=0)
        for batch in batches:
            stream_labels = model.partial_fit(batch.views)
        union = [
            np.vstack([b.views[v] for b in batches])
            for v in range(scenario.n_views)
        ]
        full_labels = AnchorMVSC(
            scenario.n_clusters, random_state=0
        ).fit_predict(union)
        ari_stream = adjusted_rand_index(truth, stream_labels)
        ari_full = adjusted_rand_index(truth, full_labels)
        # Documented tolerance: the cheap fold-in may trail a cold fit
        # on the union by at most 0.1 ARI on this stationary prefix.
        assert ari_stream >= ari_full - 0.1

    def test_state_grows_and_labels_cover_stream(self):
        _, batches = _drifted_stream(n_batches=2, batch_size=60)
        model = AnchorMVSC(4, random_state=0)
        model.partial_fit(batches[0].views)
        assert model.n_seen_ == 60
        labels = model.partial_fit(batches[1].views)
        assert model.n_seen_ == 120
        assert labels.shape == (120,)
        assert model.labels_.shape == (120,)

    def test_partial_refit_and_refit(self):
        _, batches = _drifted_stream(n_batches=2, batch_size=60)
        model = AnchorMVSC(4, random_state=0)
        for batch in batches:
            model.partial_fit(batch.views)
        partial = model.partial_refit()
        assert partial.shape == (120,)
        full = model.refit()
        assert full.shape == (120,)
        # A full refit re-selects anchors on everything seen, so it must
        # agree with a cold fit on the union bit-for-bit.
        union = [
            np.vstack([b.views[v] for b in batches]) for v in range(3)
        ]
        cold = AnchorMVSC(4, random_state=0)
        # refit() reuses the model's own rng state, so compare structure
        # rather than bits: same partition quality on the union.
        assert adjusted_rand_index(cold.fit_predict(union), full) > 0.4

    def test_validation(self):
        model = AnchorMVSC(4, random_state=0)
        with pytest.raises(ValidationError):
            model.partial_refit()
        with pytest.raises(ValidationError):
            model.refit()
        _, batches = _drifted_stream(n_batches=2, batch_size=60)
        model.partial_fit(batches[0].views)
        with pytest.raises(ValidationError):
            model.partial_fit(batches[1].views, refine_iters=0)
        with pytest.raises(ValidationError):
            model.partial_fit(batches[1].views[:2])
        bad = [v[:, :-1] for v in batches[1].views]
        with pytest.raises(ValidationError):
            model.partial_fit(bad)


class TestDriftDetectors:
    def test_protocol(self):
        assert isinstance(ObjectiveShiftDetector(), DriftDetector)
        assert isinstance(ViewWeightShiftDetector(), DriftDetector)

    def test_objective_seeds_then_fires_on_shift(self):
        det = ObjectiveShiftDetector(threshold=0.25, cooldown=0)
        assert det.update(_stats(batch_cost=1.0)).action == "fold_in"
        assert det.update(_stats(batch_cost=1.01)).action == "fold_in"
        decision = det.update(_stats(batch_cost=1.4))
        assert decision.action == "partial_refit"
        assert decision.severity > 0.25

    def test_objective_full_refit_above_twice_threshold(self):
        det = ObjectiveShiftDetector(threshold=0.25, cooldown=0)
        det.update(_stats(batch_cost=1.0))
        assert det.update(_stats(batch_cost=3.0)).action == "full_refit"

    def test_quiet_on_stationary(self):
        det = ObjectiveShiftDetector(threshold=0.25)
        rng = np.random.default_rng(0)
        for i in range(20):
            value = 1.0 + 0.02 * rng.standard_normal()
            assert det.update(_stats(index=i, batch_cost=value)).action == (
                "fold_in"
            )

    def test_cooldown_and_hysteresis(self):
        det = ObjectiveShiftDetector(
            threshold=0.25, cooldown=2, hysteresis=0.5
        )
        det.update(_stats(batch_cost=1.0))
        assert det.update(_stats(batch_cost=1.5)).action == "partial_refit"
        # Cooldown: two quiet batches even though severity stays high.
        assert det.update(_stats(batch_cost=1.5)).action == "fold_in"
        assert det.update(_stats(batch_cost=1.5)).action == "fold_in"
        # Past cooldown the alarm is still latched (severity above
        # hysteresis * threshold), so it must not re-fire.
        assert det.update(_stats(batch_cost=1.5)).action == "fold_in"
        # Severity collapses below the re-arm level -> alarm clears ...
        assert det.update(_stats(batch_cost=1.02)).action == "fold_in"
        # ... and a fresh shift fires again.
        assert det.update(_stats(batch_cost=1.5)).action == "partial_refit"

    def test_notify_refit_reseeds_baseline(self):
        det = ObjectiveShiftDetector(threshold=0.25, cooldown=0)
        det.update(_stats(batch_cost=1.0))
        det.update(_stats(batch_cost=1.5))
        det.notify_refit()
        # Post-refit regime becomes the new baseline: 1.5 is now normal.
        assert det.update(_stats(batch_cost=1.5)).action == "fold_in"
        assert det.update(_stats(batch_cost=1.55)).action == "fold_in"

    def test_weight_detector_fires_on_weight_flip(self):
        det = ViewWeightShiftDetector(threshold=0.15, cooldown=0)
        assert det.update(_stats(weights=(0.8, 0.2))).action == "fold_in"
        assert det.update(_stats(weights=(0.79, 0.21))).action == "fold_in"
        decision = det.update(_stats(weights=(0.2, 0.8)))
        assert decision.action == "full_refit"
        assert decision.severity == pytest.approx(0.6)

    def test_disabled_detector_never_fires(self):
        det = ObjectiveShiftDetector(threshold=0.0)
        det.update(_stats(batch_cost=1.0))
        assert det.update(_stats(batch_cost=100.0)).action == "fold_in"

    def test_worst_decision_orders_by_rank_then_severity(self):
        fold = DriftDecision("fold_in", 0.9)
        partial = DriftDecision("partial_refit", 0.3)
        full = DriftDecision("full_refit", 0.1)
        assert worst_decision([fold, partial]).action == "partial_refit"
        assert worst_decision([partial, full]).action == "full_refit"
        assert worst_decision([]).action == "fold_in"

    def test_decision_validates_action(self):
        with pytest.raises(ValidationError):
            DriftDecision("retrain_everything")


class TestStreamingMVSC:
    def test_fires_exactly_at_injected_shift(self):
        scenario, batches = _drifted_stream()
        streamer = StreamingMVSC(
            AnchorMVSC(scenario.n_clusters, random_state=0)
        )
        for batch in batches:
            streamer.partial_fit(batch.views)
        actions = [r.action for r in streamer.history]
        assert actions[0] == "fit"
        assert actions[SHIFT_BATCH] in ("partial_refit", "full_refit")
        for i, action in enumerate(actions[1:], start=1):
            if i != SHIFT_BATCH:
                assert action == "fold_in", f"unexpected {action} at {i}"
        assert {e.batch_index for e in streamer.events} == {SHIFT_BATCH}

    def test_stationary_stream_stays_on_fold_in(self):
        scenario = get_scenario("confused_pairs").with_size(100)
        batches = stream_batches(scenario, 5, random_state=0)
        streamer = StreamingMVSC(
            AnchorMVSC(scenario.n_clusters, random_state=0)
        )
        for batch in batches:
            streamer.partial_fit(batch.views)
        assert [r.action for r in streamer.history][1:] == ["fold_in"] * 4
        assert streamer.events == []

    def test_detectors_off(self):
        scenario, batches = _drifted_stream(n_batches=6, batch_size=80)
        streamer = StreamingMVSC(
            AnchorMVSC(scenario.n_clusters, random_state=0), detectors=()
        )
        for batch in batches:
            streamer.partial_fit(batch.views)
        assert [r.action for r in streamer.history][1:] == ["fold_in"] * 5

    def test_records_are_json_ready(self):
        scenario, batches = _drifted_stream(n_batches=2, batch_size=60)
        streamer = StreamingMVSC(
            AnchorMVSC(scenario.n_clusters, random_state=0)
        )
        for batch in batches:
            streamer.partial_fit(batch.views)
        payload = json.dumps([r.to_dict() for r in streamer.history])
        rows = json.loads(payload)
        assert rows[0]["action"] == "fit"
        assert rows[1]["n_total"] == 120

    def test_from_config(self):
        config = UMSCConfig(n_clusters=4, gamma=3.0, max_iter=7)
        streamer = StreamingMVSC.from_config(
            config,
            streaming=StreamingConfig(refine_iters=3),
            random_state=0,
        )
        assert streamer.model.n_clusters == 4
        assert streamer.model.gamma == 3.0
        assert streamer.model.max_iter == 7
        assert streamer.config.refine_iters == 3
        with pytest.raises(ValidationError):
            StreamingMVSC.from_config(object())

    def test_rejects_non_anchor_model(self):
        with pytest.raises(ValidationError):
            StreamingMVSC(object())

    def test_streaming_config_validation(self):
        with pytest.raises(ValidationError):
            StreamingConfig(refine_iters=0)
        with pytest.raises(ValidationError):
            StreamingConfig(hysteresis=1.5)
        with pytest.raises(ValidationError):
            StreamingConfig(cooldown=-1)
        with pytest.raises(ValidationError):
            StreamingConfig(window=0)


class TestStreamingArtifacts:
    def test_artifact_carries_anchor_extras(self, tmp_path):
        _, batches = _drifted_stream(n_batches=2, batch_size=60)
        model = AnchorMVSC(4, random_state=0)
        for batch in batches:
            model.partial_fit(batch.views)
        artifact = model.to_artifact()
        assert set(artifact.extras) == {
            f"anchors_view_{i}" for i in range(3)
        }
        for i, anchors in enumerate(model.anchors_):
            np.testing.assert_array_equal(
                artifact.extras[f"anchors_view_{i}"], anchors
            )
        assert artifact.config.get("anchor_seed") == 0
        manifest = artifact.manifest()
        assert set(manifest["extras"]) == set(artifact.extras)

    def test_extras_roundtrip_in_fresh_process(self, tmp_path):
        _, batches = _drifted_stream(n_batches=1, batch_size=60)
        model = AnchorMVSC(4, random_state=0)
        model.partial_fit(batches[0].views)
        model.save(tmp_path / "art")
        script = (
            "import sys, numpy as np\n"
            "from repro.serving import ModelArtifact\n"
            "art = ModelArtifact.load(sys.argv[1])\n"
            "np.savez(sys.argv[2], **art.extras)\n"
        )
        src = os.path.join(os.path.dirname(repro.__file__), os.pardir)
        env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
        subprocess.run(
            [
                sys.executable,
                "-c",
                script,
                str(tmp_path / "art"),
                str(tmp_path / "extras.npz"),
            ],
            check=True,
            env=env,
        )
        with np.load(tmp_path / "extras.npz") as data:
            assert set(data.files) == {
                f"anchors_view_{i}" for i in range(3)
            }
            for i, anchors in enumerate(model.anchors_):
                np.testing.assert_array_equal(
                    data[f"anchors_view_{i}"], anchors
                )

    def test_artifacts_without_extras_still_load(self, tmp_path):
        artifact = ModelArtifact(
            model_class="AnchorMVSC",
            train_views=[np.eye(6), np.eye(6) * 2.0],
            train_labels=np.array([0, 0, 1, 1, 2, 2], dtype=np.int64),
            view_weights=np.array([0.5, 0.5]),
            n_clusters=3,
        )
        artifact.save(tmp_path)
        manifest = artifact.manifest()
        assert "extras" not in manifest
        loaded = ModelArtifact.load(tmp_path)
        assert loaded.extras == {}
        assert loaded.content_hash() == artifact.content_hash()


class TestPredictorAdapt:
    @staticmethod
    def _fitted_predictor():
        _, batches = _drifted_stream(n_batches=2, batch_size=60)
        model = AnchorMVSC(4, random_state=0)
        model.partial_fit(batches[0].views)
        return Predictor(model.to_artifact()), batches[1]

    def test_adapt_with_labels_extends_reference(self):
        predictor, batch = self._fitted_predictor()
        n_before = predictor.artifact.n_samples
        returned = predictor.adapt(batch.views, labels=batch.labels)
        np.testing.assert_array_equal(returned, batch.labels)
        assert predictor.artifact.n_samples == n_before + batch.n_samples
        np.testing.assert_array_equal(
            predictor.artifact.train_labels[-batch.n_samples :],
            batch.labels,
        )

    def test_adapt_without_labels_propagates(self):
        predictor, batch = self._fitted_predictor()
        expected = predictor.predict(batch.views)
        returned = predictor.adapt(batch.views)
        np.testing.assert_array_equal(returned, expected)

    def test_adapted_index_matches_rebuilt_predictor(self):
        predictor, batch = self._fitted_predictor()
        predictor.adapt(batch.views, labels=batch.labels)
        rebuilt = Predictor(predictor.artifact)
        queries = [v[::2] for v in batch.views]
        np.testing.assert_array_equal(
            predictor.predict(queries), rebuilt.predict(queries)
        )

    def test_adapt_then_save_roundtrips(self, tmp_path):
        predictor, batch = self._fitted_predictor()
        predictor.adapt(batch.views, labels=batch.labels)
        predictor.save(tmp_path)
        loaded = Predictor.load(tmp_path)
        assert loaded.artifact.n_samples == predictor.artifact.n_samples
        queries = [v[::2] for v in batch.views]
        np.testing.assert_array_equal(
            loaded.predict(queries), predictor.predict(queries)
        )

    def test_adapt_validates_labels(self):
        predictor, batch = self._fitted_predictor()
        with pytest.raises(ValidationError, match="shape"):
            predictor.adapt(batch.views, labels=batch.labels[:-1])
        with pytest.raises(ValidationError):
            predictor.adapt(
                batch.views, labels=np.full(batch.n_samples, 99)
            )


class TestStreamCLI:
    def test_stream_quick_runs(self, tmp_path):
        out = StringIO()
        code = main(
            [
                "stream",
                "confused_pairs",
                "--quick",
                "--seed",
                "0",
                "--json",
                str(tmp_path / "stream.json"),
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "fold_in" in text
        assert "total" in text
        payload = json.loads((tmp_path / "stream.json").read_text())
        assert payload["n_batches"] == 4
        assert len(payload["records"]) == 4
        assert {"acc", "nmi", "ari"} <= set(payload["records"][0])

    def test_stream_with_drift_reports_detector(self):
        out = StringIO()
        code = main(
            [
                "stream",
                "confused_pairs",
                "--quick",
                "--drift-at",
                "2",
                "--drift-mean-shift",
                "4",
                "--seed",
                "0",
            ],
            out=out,
        )
        assert code == 0
        assert "objective_shift" in out.getvalue()

    def test_stream_rejects_bad_drift_batch(self):
        with pytest.raises(ValidationError, match="at_batch"):
            main(
                [
                    "stream",
                    "confused_pairs",
                    "--quick",
                    "--drift-at",
                    "9",
                ],
                out=StringIO(),
            )
