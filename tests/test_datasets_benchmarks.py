"""Tests for repro.datasets.benchmarks."""

import numpy as np
import pytest

from repro.datasets.benchmarks import (
    EXTENDED_SPECS,
    SPECS,
    available_benchmarks,
    get_spec,
    load_benchmark,
)
from repro.exceptions import DatasetError


class TestRegistry:
    def test_seven_benchmarks(self):
        assert len(available_benchmarks()) == 7

    def test_table1_order(self):
        assert available_benchmarks() == [
            "three_sources",
            "bbcsport",
            "msrcv1",
            "handwritten",
            "caltech7",
            "orl",
            "yale",
        ]

    def test_get_spec_known(self):
        spec = get_spec("msrcv1")
        assert spec.n_samples == 210
        assert spec.n_clusters == 7

    def test_get_spec_unknown(self):
        with pytest.raises(DatasetError, match="unknown benchmark"):
            get_spec("imagenet")

    def test_extended_registry(self):
        names = available_benchmarks(extended=True)
        assert "reuters" in names and "webkb" in names and "wikipedia" in names
        assert len(names) == len(SPECS) + len(EXTENDED_SPECS)
        # Paper registry stays unchanged.
        assert "reuters" not in available_benchmarks()

    def test_extended_spec_loads(self):
        ds = load_benchmark("wikipedia")
        assert ds.n_samples == 693
        assert ds.n_clusters == 10

    def test_specs_internally_consistent(self):
        for spec in list(SPECS.values()) + list(EXTENDED_SPECS.values()):
            assert len(spec.view_dims) == len(spec.view_kinds) == len(spec.view_noise)
            if spec.view_distractors is not None:
                assert len(spec.view_distractors) == len(spec.view_dims)
            if spec.view_outliers is not None:
                assert len(spec.view_outliers) == len(spec.view_dims)
            if spec.confusion:
                assert len(spec.confusion) == len(spec.view_dims)
                for pairs in spec.confusion:
                    for a, b in pairs:
                        assert 0 <= a < spec.n_clusters
                        assert 0 <= b < spec.n_clusters

    def test_shapes_match_literature(self):
        # Spot-check the famous dataset statistics (Table I).
        hw = get_spec("handwritten")
        assert (hw.n_samples, hw.n_clusters) == (2000, 10)
        assert hw.view_dims == (240, 76, 216, 47, 64, 6)
        ts = get_spec("three_sources")
        assert (ts.n_samples, ts.n_clusters, len(ts.view_dims)) == (169, 6, 3)
        orl = get_spec("orl")
        assert (orl.n_samples, orl.n_clusters) == (400, 40)


class TestLoadBenchmark:
    def test_loads_with_declared_shape(self):
        ds = load_benchmark("msrcv1")
        spec = get_spec("msrcv1")
        assert ds.n_samples == spec.n_samples
        assert ds.n_clusters == spec.n_clusters
        assert ds.view_dims == spec.view_dims

    def test_deterministic_default_seed(self):
        a = load_benchmark("yale")
        b = load_benchmark("yale")
        np.testing.assert_array_equal(a.views[0], b.views[0])
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = load_benchmark("yale", random_state=0)
        b = load_benchmark("yale", random_state=1)
        assert not np.array_equal(a.views[0], b.views[0])

    def test_text_views_are_sparse(self):
        ds = load_benchmark("three_sources")
        for view in ds.views:
            assert np.all(view >= 0)
            assert np.count_nonzero(view) / view.size < 0.2

    def test_description_mentions_substitution(self):
        ds = load_benchmark("bbcsport")
        assert "substitute" in ds.description
