"""Tests for repro.cluster.kmeans."""

import numpy as np
import pytest

from repro.cluster.kmeans import KMeans, kmeans_plus_plus_init
from repro.exceptions import ValidationError


def _blobs(k=3, per=20, sep=10.0, seed=0):
    rng = np.random.default_rng(seed)
    parts = [rng.normal(size=(per, 2)) + sep * i for i in range(k)]
    return np.vstack(parts), np.repeat(np.arange(k), per)


class TestKMeansPlusPlus:
    def test_shape(self):
        x, _ = _blobs()
        centers = kmeans_plus_plus_init(x, 3, np.random.default_rng(0))
        assert centers.shape == (3, 2)

    def test_centers_are_data_points(self):
        x, _ = _blobs()
        centers = kmeans_plus_plus_init(x, 4, np.random.default_rng(1))
        for center in centers:
            assert np.any(np.all(np.isclose(x, center), axis=1))

    def test_spreads_across_blobs(self):
        # With well-separated blobs, the three seeds land in three blobs
        # almost surely.
        x, truth = _blobs(sep=100.0)
        centers = kmeans_plus_plus_init(x, 3, np.random.default_rng(2))
        blobs_hit = set()
        for center in centers:
            idx = np.argmin(np.sum((x - center) ** 2, axis=1))
            blobs_hit.add(int(truth[idx]))
        assert len(blobs_hit) == 3

    def test_duplicate_points_handled(self):
        x = np.zeros((10, 2))
        centers = kmeans_plus_plus_init(x, 3, np.random.default_rng(3))
        assert centers.shape == (3, 2)

    def test_invalid_k(self):
        x, _ = _blobs()
        with pytest.raises(ValidationError):
            kmeans_plus_plus_init(x, 0, np.random.default_rng(0))


class TestKMeans:
    def test_recovers_blobs(self):
        from repro.metrics import clustering_accuracy

        x, truth = _blobs(sep=15.0)
        labels = KMeans(3, random_state=0).fit_predict(x)
        assert clustering_accuracy(truth, labels) == 1.0

    def test_result_fields(self):
        x, _ = _blobs()
        result = KMeans(3, random_state=1).fit(x)
        assert result.labels.shape == (60,)
        assert result.centers.shape == (3, 2)
        assert result.inertia >= 0
        assert result.n_iter >= 1

    def test_no_empty_clusters(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(30, 2))
        result = KMeans(8, random_state=2).fit(x)
        assert np.all(np.bincount(result.labels, minlength=8) >= 1)

    def test_deterministic_given_seed(self):
        x, _ = _blobs(seed=5)
        a = KMeans(3, random_state=7).fit_predict(x)
        b = KMeans(3, random_state=7).fit_predict(x)
        np.testing.assert_array_equal(a, b)

    def test_more_restarts_no_worse(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(50, 3))
        one = KMeans(5, n_init=1, random_state=0).fit(x).inertia
        many = KMeans(5, n_init=20, random_state=0).fit(x).inertia
        assert many <= one + 1e-9

    def test_inertia_matches_labels(self):
        x, _ = _blobs(seed=8)
        result = KMeans(3, random_state=3).fit(x)
        recomputed = sum(
            np.sum((x[result.labels == j] - result.centers[j]) ** 2)
            for j in range(3)
        )
        assert result.inertia == pytest.approx(recomputed, rel=1e-6)

    def test_k_equals_n(self):
        x = np.arange(10, dtype=float).reshape(5, 2)
        result = KMeans(5, random_state=0).fit(x)
        assert set(result.labels.tolist()) == set(range(5))
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_k_greater_than_n_rejected(self):
        with pytest.raises(ValidationError, match="exceeds"):
            KMeans(10).fit(np.zeros((4, 2)))

    def test_param_validation(self):
        with pytest.raises(ValidationError):
            KMeans(0)
        with pytest.raises(ValidationError):
            KMeans(2, n_init=0)
        with pytest.raises(ValidationError):
            KMeans(2, max_iter=0)

    def test_single_cluster(self):
        x, _ = _blobs()
        result = KMeans(1, random_state=0).fit(x)
        assert set(result.labels.tolist()) == {0}
        np.testing.assert_allclose(result.centers[0], x.mean(axis=0))
