"""Tests for repro.graph.anchor (anchor graphs)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph.anchor import (
    anchor_affinity,
    anchor_affinity_factor,
    anchor_assignment,
    anchor_spectral_embedding,
    select_anchors,
)


def _blobs(n_per=50, sep=10.0, seed=0):
    rng = np.random.default_rng(seed)
    return np.vstack(
        [rng.normal(size=(n_per, 3)) + sep * i for i in range(3)]
    )


class TestSelectAnchors:
    def test_kmeans_anchors_shape(self):
        anchors = select_anchors(_blobs(), 12, random_state=0)
        assert anchors.shape == (12, 3)

    def test_random_anchors_are_data_points(self):
        x = _blobs()
        anchors = select_anchors(x, 8, method="random", random_state=1)
        for a in anchors:
            assert np.any(np.all(np.isclose(x, a), axis=1))

    def test_kmeans_anchors_cover_blobs(self):
        x = _blobs(sep=50.0)
        anchors = select_anchors(x, 9, random_state=2)
        # Every blob region contains at least one anchor.
        for i in range(3):
            center = np.full(3, 50.0 * i)
            dists = np.linalg.norm(anchors - center, axis=1)
            assert dists.min() < 10.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            select_anchors(_blobs(), 0)
        with pytest.raises(ValidationError):
            select_anchors(_blobs(), 10, method="psychic")


class TestAnchorAssignment:
    def test_rows_on_simplex(self):
        x = _blobs()
        anchors = select_anchors(x, 10, random_state=0)
        z = anchor_assignment(x, anchors, k=4)
        assert z.shape == (150, 10)
        assert np.all(z >= 0)
        np.testing.assert_allclose(z.sum(axis=1), 1.0, atol=1e-8)

    def test_sparsity(self):
        x = _blobs()
        anchors = select_anchors(x, 15, random_state=1)
        z = anchor_assignment(x, anchors, k=3)
        assert np.all(np.count_nonzero(z, axis=1) <= 3)

    def test_nearest_anchor_weighted_most(self):
        x = np.array([[0.0, 0.0]])
        anchors = np.array([[0.5, 0.0], [3.0, 0.0], [9.0, 0.0]])
        z = anchor_assignment(x, anchors, k=2)
        assert z[0, 0] > z[0, 1] > 0
        assert z[0, 2] == 0.0

    def test_k_equals_m(self):
        x = _blobs(n_per=10)
        anchors = select_anchors(x, 5, random_state=2)
        z = anchor_assignment(x, anchors, k=5)
        np.testing.assert_allclose(z.sum(axis=1), 1.0, atol=1e-8)

    def test_dimension_mismatch(self):
        with pytest.raises(ValidationError, match="feature dimension"):
            anchor_assignment(np.zeros((4, 3)), np.zeros((2, 5)))


class TestAnchorAffinity:
    def _z(self, seed=0):
        x = _blobs(seed=seed)
        anchors = select_anchors(x, 12, random_state=seed)
        return anchor_assignment(x, anchors, k=4)

    def test_dense_affinity_properties(self):
        w = anchor_affinity(self._z())
        assert w.shape == (150, 150)
        np.testing.assert_allclose(w, w.T, atol=1e-12)
        assert np.all(w >= -1e-12)
        np.testing.assert_allclose(np.diag(w), 0.0, atol=1e-12)

    def test_factorization_consistent(self):
        z = self._z(seed=1)
        b = anchor_affinity_factor(z)
        w_full = b @ b.T
        np.fill_diagonal(w_full, 0.0)
        np.testing.assert_allclose(anchor_affinity(z), w_full, atol=1e-12)

    def test_blocks_separate(self):
        x = _blobs(sep=40.0, seed=3)
        anchors = select_anchors(x, 12, random_state=3)
        z = anchor_assignment(x, anchors, k=3)
        w = anchor_affinity(z)
        assert w[:50, 100:].max() == pytest.approx(0.0, abs=1e-12)


class TestAnchorSpectralEmbedding:
    def test_orthonormal_columns(self):
        x = _blobs(seed=4)
        anchors = select_anchors(x, 15, random_state=4)
        z = anchor_assignment(x, anchors, k=4)
        emb = anchor_spectral_embedding(z, 3)
        np.testing.assert_allclose(emb.T @ emb, np.eye(3), atol=1e-8)

    def test_separates_blobs(self):
        from repro.cluster.kmeans import KMeans
        from repro.metrics import clustering_accuracy

        x = _blobs(sep=20.0, seed=5)
        anchors = select_anchors(x, 15, random_state=5)
        z = anchor_assignment(x, anchors, k=4)
        emb = anchor_spectral_embedding(z, 3)
        labels = KMeans(3, random_state=0).fit_predict(emb)
        truth = np.repeat(np.arange(3), 50)
        assert clustering_accuracy(truth, labels) > 0.95

    def test_n_components_validation(self):
        z = np.full((10, 4), 0.25)
        with pytest.raises(ValidationError):
            anchor_spectral_embedding(z, 5)
