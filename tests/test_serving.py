"""Tests for repro.serving: artifacts, the predictor, and the service."""

import json
import os
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

import repro
from repro.core import AnchorMVSC, SparseMVSC, UnifiedMVSC
from repro.core.out_of_sample import propagate_labels
from repro.exceptions import (
    ArtifactError,
    ClampWarning,
    RecoveryExhaustedError,
    ServiceClosedError,
    ServiceOverloadedError,
    ValidationError,
)
from repro.observability import Trace, use_trace
from repro.robust import FaultSpec, inject_faults
from repro.serving import (
    ModelArtifact,
    PredictionService,
    Predictor,
    kernel_vote_scores,
)
from repro.serving.artifact import ARRAYS_NAME, MANIFEST_NAME, SCHEMA_VERSION


def _blob_artifact(n=40, n_views=2, c=3, seed=0, **kwargs):
    """A small hand-built artifact over well-separated blobs."""
    rng = np.random.default_rng(seed)
    centers = np.arange(c)[:, None] * 8.0
    views, labels = [], np.repeat(np.arange(c), n // c)
    for v in range(n_views):
        d = 3 + 2 * v
        views.append(
            centers[labels][:, :1] * np.ones(d) + rng.normal(0, 0.3, (labels.size, d))
        )
    kwargs.setdefault("view_weights", rng.uniform(0.5, 1.5, n_views))
    return ModelArtifact(
        model_class="UnifiedMVSC",
        train_views=views,
        train_labels=labels,
        view_weights=kwargs.pop("view_weights"),
        n_clusters=c,
        **kwargs,
    )


def _queries(artifact, m=9, seed=1):
    rng = np.random.default_rng(seed)
    return [rng.normal(8.0, 3.0, (m, d)) for d in artifact.view_dims]


class TestArtifactRoundTrip:
    def test_round_trip_is_bit_identical(self, tmp_path):
        art = _blob_artifact()
        path = art.save(tmp_path / "art")
        same = ModelArtifact.load(path)
        assert same.model_class == art.model_class
        assert same.n_clusters == art.n_clusters
        assert same.n_neighbors == art.n_neighbors
        for a, b in zip(art.train_views, same.train_views):
            np.testing.assert_array_equal(a, b)
            assert a.dtype == b.dtype
        np.testing.assert_array_equal(art.train_labels, same.train_labels)
        np.testing.assert_array_equal(art.view_weights, same.view_weights)
        assert art.content_hash() == same.content_hash()

    def test_manifest_records_versions_and_config(self, tmp_path):
        art = _blob_artifact(config={"lam": 1.0, "graph": "auto"})
        art.save(tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["config"]["graph"] == "auto"
        assert manifest["versions"]["numpy"] == np.__version__
        assert manifest["versions"]["repro"] == repro.__version__
        assert manifest["content_hash"] == art.content_hash()

    def test_save_is_idempotent_overwrite(self, tmp_path):
        art = _blob_artifact()
        art.save(tmp_path)
        art.save(tmp_path)
        assert ModelArtifact.load(tmp_path).content_hash() == art.content_hash()

    @pytest.mark.parametrize(
        "model_cls", [UnifiedMVSC, AnchorMVSC, SparseMVSC]
    )
    def test_model_round_trip_matches_in_process(
        self, tmp_path, small_dataset, model_cls
    ):
        model = model_cls(small_dataset.n_clusters, random_state=0)
        fitted_labels = model.fit_predict(small_dataset.views)
        directory = model.save(tmp_path / model_cls.__name__)
        predictor = model_cls.load(directory)
        in_process = Predictor(model.to_artifact())
        np.testing.assert_array_equal(
            predictor.predict(small_dataset.views),
            in_process.predict(small_dataset.views),
        )
        # Self-prediction mostly agrees with the fitted clustering (the
        # kernel vote is a different estimator, so exact equality is not
        # the contract).
        agreement = float(
            (predictor.predict(small_dataset.views) == fitted_labels).mean()
        )
        assert agreement > 0.85

    def test_load_matches_propagate_labels_bitwise(self, tmp_path, small_dataset):
        model = UnifiedMVSC(small_dataset.n_clusters, random_state=0)
        result = model.fit(small_dataset.views)
        model.save(tmp_path)
        predictor = Predictor.load(tmp_path)
        queries = [v[::3] for v in small_dataset.views]
        expected = propagate_labels(
            small_dataset.views,
            result.labels,
            queries,
            view_weights=result.view_weights,
            n_neighbors=model.config.n_neighbors,
        )
        np.testing.assert_array_equal(predictor.predict(queries), expected)

    def test_fresh_process_predict_is_bit_identical(self, tmp_path):
        art = _blob_artifact()
        art.save(tmp_path / "art")
        queries = _queries(art)
        np.savez(tmp_path / "queries.npz", *queries)
        script = (
            "import sys, numpy as np\n"
            "from repro.serving import Predictor\n"
            "with np.load(sys.argv[2]) as data:\n"
            "    queries = [data[k] for k in data.files]\n"
            "labels = Predictor.load(sys.argv[1]).predict(queries)\n"
            "np.save(sys.argv[3], labels)\n"
        )
        src = os.path.join(os.path.dirname(repro.__file__), os.pardir)
        env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
        subprocess.run(
            [
                sys.executable,
                "-c",
                script,
                str(tmp_path / "art"),
                str(tmp_path / "queries.npz"),
                str(tmp_path / "labels.npy"),
            ],
            check=True,
            env=env,
        )
        fresh = np.load(tmp_path / "labels.npy")
        np.testing.assert_array_equal(fresh, Predictor(art).predict(queries))

    def test_unfitted_model_save_raises(self):
        with pytest.raises(ValidationError, match="fit"):
            UnifiedMVSC(3).save("/tmp/nowhere")

    def test_fit_affinities_only_cannot_save(self, affinity_pair, small_dataset):
        model = UnifiedMVSC(small_dataset.n_clusters, random_state=0)
        model.fit_affinities(affinity_pair)
        with pytest.raises(ValidationError, match="fit_affinities"):
            model.to_artifact()

    def test_wrong_class_load_rejected(self, tmp_path):
        _blob_artifact().save(tmp_path)  # model_class == "UnifiedMVSC"
        with pytest.raises(ValidationError, match="UnifiedMVSC"):
            AnchorMVSC.load(tmp_path)


class TestArtifactValidation:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(ArtifactError, match="manifest"):
            ModelArtifact.load(tmp_path / "nope")

    def test_corrupt_manifest_json(self, tmp_path):
        _blob_artifact().save(tmp_path)
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ArtifactError, match="unreadable"):
            ModelArtifact.load(tmp_path)

    def test_manifest_missing_keys(self, tmp_path):
        _blob_artifact().save(tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        del manifest["n_clusters"], manifest["content_hash"]
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="missing keys"):
            ModelArtifact.load(tmp_path)

    def test_wrong_schema_version(self, tmp_path):
        _blob_artifact().save(tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 1
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="schema version"):
            ModelArtifact.load(tmp_path)

    def test_missing_arrays_file(self, tmp_path):
        _blob_artifact().save(tmp_path)
        (tmp_path / ARRAYS_NAME).unlink()
        with pytest.raises(ArtifactError, match="arrays"):
            ModelArtifact.load(tmp_path)

    def test_truncated_arrays_file(self, tmp_path):
        _blob_artifact().save(tmp_path)
        payload = (tmp_path / ARRAYS_NAME).read_bytes()
        (tmp_path / ARRAYS_NAME).write_bytes(payload[: len(payload) // 2])
        with pytest.raises(ArtifactError, match="corrupt|missing"):
            ModelArtifact.load(tmp_path)

    def test_shape_mismatch_vs_manifest(self, tmp_path):
        _blob_artifact().save(tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest["view_dims"][0] += 1
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="shape"):
            ModelArtifact.load(tmp_path)

    def test_tampered_arrays_fail_the_hash(self, tmp_path):
        art = _blob_artifact()
        art.save(tmp_path)
        tampered = dict(
            np.load(tmp_path / ARRAYS_NAME, allow_pickle=False).items()
        )
        tampered["view_0"] = tampered["view_0"] + 1.0
        np.savez(tmp_path / ARRAYS_NAME, **tampered)
        with pytest.raises(ArtifactError, match="hash"):
            ModelArtifact.load(tmp_path)

    def test_invalid_construction(self):
        art = _blob_artifact()
        with pytest.raises(ValidationError, match="view_weights"):
            ModelArtifact(
                model_class="X",
                train_views=art.train_views,
                train_labels=art.train_labels,
                view_weights=np.zeros(art.n_views),
                n_clusters=art.n_clusters,
            )
        with pytest.raises(ValidationError, match="n_clusters"):
            ModelArtifact(
                model_class="X",
                train_views=art.train_views,
                train_labels=art.train_labels,
                view_weights=art.view_weights,
                n_clusters=1,
            )


class TestPredictor:
    def test_matches_propagate_labels_bitwise(self):
        art = _blob_artifact(n_views=3)
        queries = _queries(art, m=17)
        expected = propagate_labels(
            art.train_views,
            art.train_labels,
            queries,
            n_clusters=art.n_clusters,
            view_weights=art.view_weights,
            n_neighbors=art.n_neighbors,
        )
        np.testing.assert_array_equal(Predictor(art).predict(queries), expected)

    @pytest.mark.parametrize("batch_size", [1, 4, 7, 1000])
    def test_chunking_preserves_labels(self, batch_size):
        # Scores can move in the last float bits across chunk shapes
        # (BLAS picks different kernels for different operand sizes);
        # labels must not.
        art = _blob_artifact()
        queries = _queries(art, m=23)
        reference = Predictor(art)
        chunked = Predictor(art, batch_size=batch_size)
        np.testing.assert_array_equal(
            chunked.predict(queries), reference.predict(queries)
        )
        np.testing.assert_allclose(
            chunked.predict_scores(queries),
            reference.predict_scores(queries),
            rtol=1e-12,
        )

    def test_parallel_views_are_bit_neutral(self):
        # Per-view votes are accumulated in view order regardless of the
        # thread pool, so n_jobs is bit-neutral (unlike batch_size).
        art = _blob_artifact(n_views=3)
        queries = _queries(art, m=23)
        serial = Predictor(art, n_jobs=None).predict_scores(queries)
        threaded = Predictor(art, n_jobs=2).predict_scores(queries)
        np.testing.assert_array_equal(threaded, serial)

    def test_scores_argmax_is_predict(self):
        art = _blob_artifact()
        queries = _queries(art)
        predictor = Predictor(art)
        scores = predictor.predict_scores(queries)
        assert scores.shape == (queries[0].shape[0], art.n_clusters)
        np.testing.assert_array_equal(
            predictor.predict(queries), np.argmax(scores, axis=1)
        )

    def test_query_validation(self):
        art = _blob_artifact(n_views=2)
        predictor = Predictor(art)
        with pytest.raises(ValidationError, match="views"):
            predictor.predict([np.zeros((2, art.view_dims[0]))])
        with pytest.raises(ValidationError, match="dim"):
            predictor.predict(
                [np.zeros((2, art.view_dims[0] + 1)), np.zeros((2, art.view_dims[1]))]
            )
        with pytest.raises(ValidationError, match="rows"):
            predictor.predict(
                [np.zeros((2, art.view_dims[0])), np.zeros((3, art.view_dims[1]))]
            )
        with pytest.raises(ValidationError, match="batch_size"):
            predictor.predict(_queries(art), batch_size=0)

    def test_clamp_warning_once(self):
        art = _blob_artifact(n=12, n_neighbors=99)
        with pytest.warns(ClampWarning, match="99"):
            predictor = Predictor(art)
        # The clamp is surfaced at construction, not per predict call.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            predictor.predict(_queries(art))

    def test_metrics_flow_to_active_trace(self):
        art = _blob_artifact()
        trace = Trace("serving-test")
        with use_trace(trace):
            Predictor(art).predict(_queries(art, m=9))
        assert trace.metrics.counters["serving.requests"].value == 9
        assert "serving.predict_seconds" in trace.metrics.histograms
        assert any(s.name == "serving.predict" for s in trace.spans)
        assert any(s.name == "serving.index_build" for s in trace.spans)


class TestKernelVote:
    def test_matches_naive_reference(self, rng):
        d2 = rng.uniform(0.1, 9.0, size=(13, 37))
        labels = rng.integers(0, 4, size=37)
        k = 9
        scores = kernel_vote_scores(d2, labels, 4, k)
        idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
        expected = np.zeros((13, 4))
        for i in range(13):
            local = d2[i, idx[i]]
            kernel = np.exp(-local / max(local.max(), 1e-12))
            for neighbor, weight in zip(idx[i], kernel):
                expected[i, labels[neighbor]] += weight
        np.testing.assert_allclose(scores, expected, rtol=1e-12, atol=0.0)
        np.testing.assert_array_equal(
            np.argmax(scores, axis=1), np.argmax(expected, axis=1)
        )

    def test_k_clamped_to_train_size(self, rng):
        d2 = rng.uniform(0.1, 4.0, size=(5, 6))
        labels = rng.integers(0, 2, size=6)
        np.testing.assert_array_equal(
            kernel_vote_scores(d2, labels, 2, 50),
            kernel_vote_scores(d2, labels, 2, 6),
        )


@pytest.mark.faults
class TestServingFaults:
    def test_load_recovers_from_one_shot_fault(self, tmp_path):
        art = _blob_artifact()
        art.save(tmp_path)
        with inject_faults(FaultSpec("serving.load", mode="raise", times=1)):
            loaded = ModelArtifact.load(tmp_path)
        assert loaded.content_hash() == art.content_hash()

    def test_load_persistent_fault_exhausts(self, tmp_path):
        _blob_artifact().save(tmp_path)
        with inject_faults(FaultSpec("serving.load", mode="raise", times=None)):
            with pytest.raises(RecoveryExhaustedError) as excinfo:
                ModelArtifact.load(tmp_path)
        assert excinfo.value.site == "serving.load"

    def test_malformed_artifact_is_not_retried(self, tmp_path):
        # ArtifactError is a ValidationError: the policy must let it
        # through untouched instead of burning retries on a bad input.
        with pytest.raises(ArtifactError, match="manifest"):
            ModelArtifact.load(tmp_path / "missing")

    def test_predict_recovers_from_one_shot_nan(self):
        art = _blob_artifact()
        queries = _queries(art)
        clean = Predictor(art).predict_scores(queries)
        with inject_faults(FaultSpec("serving.predict", mode="nan", times=1)):
            recovered = Predictor(art).predict_scores(queries)
        np.testing.assert_array_equal(recovered, clean)

    def test_predict_persistent_raise_recovers_via_serial_fallback(self):
        art = _blob_artifact()
        queries = _queries(art)
        clean = Predictor(art).predict_scores(queries)
        with inject_faults(
            FaultSpec("serving.predict", mode="raise", times=None)
        ):
            recovered = Predictor(art).predict_scores(queries)
        np.testing.assert_array_equal(recovered, clean)


class _GatedPredictor(Predictor):
    """Predictor whose predict blocks until the test opens the gate."""

    def __init__(self, artifact, **kwargs):
        super().__init__(artifact, **kwargs)
        self.started = threading.Event()
        self.gate = threading.Event()

    def predict(self, views, **kwargs):
        self.started.set()
        assert self.gate.wait(timeout=10.0)
        return super().predict(views, **kwargs)


class TestPredictionService:
    def test_concurrent_clients_match_serial_predict(self, small_dataset):
        model = UnifiedMVSC(small_dataset.n_clusters, random_state=0)
        model.fit(small_dataset.views)
        predictor = Predictor(model.to_artifact())
        serial = predictor.predict(small_dataset.views)
        n = small_dataset.n_samples
        results = [None] * n
        n_clients = 8
        with PredictionService(
            predictor, max_batch=16, max_latency_ms=10.0
        ) as service:

            def client(worker):
                for i in range(worker, n, n_clients):
                    results[i] = service.predict_one(
                        [v[i] for v in small_dataset.views]
                    )

            threads = [
                threading.Thread(target=client, args=(worker,))
                for worker in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = service.stats()
        np.testing.assert_array_equal(np.array(results), serial)
        assert stats.completed == n
        # Micro-batching actually coalesced: far fewer predicts than
        # requests (worst observed in practice is ~n/2; assert the
        # direction, not the timing).
        assert stats.batches <= n

    def test_backpressure_raises_typed_error(self):
        art = _blob_artifact()
        predictor = _GatedPredictor(art)
        sample = [q[0] for q in _queries(art, m=1)]
        service = PredictionService(
            predictor, max_batch=1, max_latency_ms=0.0, max_queue=1
        )
        try:
            first = service.submit(sample)
            assert predictor.started.wait(timeout=10.0)
            # Worker is inside predict; the queue (capacity 1) is free
            # again, so one more request fits and the next must bounce.
            second = service.submit(sample)
            with pytest.raises(ServiceOverloadedError, match="full"):
                service.submit(sample)
            assert service.stats().rejected == 1
        finally:
            predictor.gate.set()
            service.close()
        assert first.result(timeout=10.0) == second.result(timeout=10.0)

    def test_close_drains_pending_requests(self):
        art = _blob_artifact()
        predictor = _GatedPredictor(art)
        sample = [q[0] for q in _queries(art, m=1)]
        service = PredictionService(predictor, max_batch=4, max_latency_ms=0.0)
        futures = [service.submit(sample) for _ in range(6)]
        assert predictor.started.wait(timeout=10.0)
        predictor.gate.set()
        service.close()
        labels = {f.result(timeout=10.0) for f in futures}
        assert len(labels) == 1  # identical sample -> identical label
        with pytest.raises(ServiceClosedError):
            service.submit(sample)
        assert service.stats().completed == 6

    def test_close_is_idempotent(self):
        service = PredictionService(Predictor(_blob_artifact()))
        service.close()
        service.close()

    def test_submit_validates_sample(self):
        art = _blob_artifact(n_views=2)
        with PredictionService(Predictor(art)) as service:
            with pytest.raises(ValidationError, match="views"):
                service.submit([np.zeros(art.view_dims[0])])
            with pytest.raises(ValidationError, match="shape"):
                service.submit(
                    [np.zeros(art.view_dims[0] + 1), np.zeros(art.view_dims[1])]
                )
            with pytest.raises(ValidationError, match="NaN"):
                service.submit(
                    [
                        np.full(art.view_dims[0], np.nan),
                        np.zeros(art.view_dims[1]),
                    ]
                )

    def test_batch_exception_fans_out_to_futures(self):
        art = _blob_artifact()

        class _ExplodingPredictor(Predictor):
            def predict(self, views, **kwargs):
                raise RuntimeError("boom")

        with PredictionService(_ExplodingPredictor(art)) as service:
            future = service.submit([q[0] for q in _queries(art, m=1)])
            with pytest.raises(RuntimeError, match="boom"):
                future.result(timeout=10.0)

    def test_invalid_parameters(self):
        predictor = Predictor(_blob_artifact())
        with pytest.raises(ValidationError, match="max_batch"):
            PredictionService(predictor, max_batch=0)
        with pytest.raises(ValidationError, match="max_queue"):
            PredictionService(predictor, max_queue=0)
        with pytest.raises(ValidationError, match="max_latency_ms"):
            PredictionService(predictor, max_latency_ms=-1.0)
        with pytest.raises(ValidationError, match="Predictor"):
            PredictionService(object())

    def test_service_metrics_flow_to_construction_trace(self):
        art = _blob_artifact()
        trace = Trace("service-test")
        sample = [q[0] for q in _queries(art, m=1)]
        with use_trace(trace):
            with PredictionService(
                Predictor(art), max_latency_ms=1.0
            ) as service:
                assert isinstance(service.predict_one(sample), int)
                deadline = time.time() + 10.0
                while (
                    "serving.batch_size" not in trace.metrics.histograms
                    and time.time() < deadline
                ):
                    time.sleep(0.01)
        assert trace.metrics.counters["serving.submitted"].value == 1
        assert "serving.batch_size" in trace.metrics.histograms
        assert "serving.queue_depth" in trace.metrics.histograms


class TestRequestTracing:
    def test_request_spans_share_one_trace_id(self):
        art = _blob_artifact()
        trace = Trace("serve")
        sample = [q[0] for q in _queries(art, m=1)]
        with use_trace(trace):
            with PredictionService(
                Predictor(art), max_latency_ms=0.0
            ) as service:
                assert isinstance(service.predict_one(sample), int)
        by_name = {s.name: s for s in trace.spans}
        assert {
            "serving.request", "serving.batch", "serving.predict",
        } <= set(by_name)
        assert all(s.trace_id == trace.trace_id for s in trace.spans)
        request = by_name["serving.request"]
        batch = by_name["serving.batch"]
        predict = by_name["serving.predict"]
        # The batch span and its coalesced request span link each other.
        assert request.span_id in batch.links
        assert batch.span_id in request.links
        # Work done on behalf of the batch carries the request identity.
        assert request.request_id
        assert predict.request_id == request.request_id
        assert batch.attributes["request_ids"] == [request.request_id]
        # The request span is externally timed but fully populated.
        assert request.duration > 0.0
        assert request.timestamp > 1e9  # epoch seconds, not perf_counter
        assert request.attributes["queue_wait_seconds"] >= 0.0
        assert request.attributes["batch_size"] == 1
        assert request.attributes["failed"] is False

    def test_explicit_request_id_is_honored(self):
        art = _blob_artifact()
        trace = Trace("serve")
        sample = [q[0] for q in _queries(art, m=1)]
        with use_trace(trace):
            with PredictionService(Predictor(art)) as service:
                future = service.submit(sample, request_id="req-explicit")
                assert isinstance(future.result(timeout=10.0), int)
        request = next(
            s for s in trace.spans if s.name == "serving.request"
        )
        assert request.request_id == "req-explicit"

    def test_coalesced_batch_links_every_request_span(self):
        art = _blob_artifact()
        predictor = _GatedPredictor(art)
        sample = [q[0] for q in _queries(art, m=1)]
        trace = Trace("coalesce")
        with use_trace(trace):
            service = PredictionService(
                predictor, max_batch=8, max_latency_ms=0.0
            )
        futures = [service.submit(sample) for _ in range(5)]
        assert predictor.started.wait(timeout=10.0)
        predictor.gate.set()
        service.close()
        for future in futures:
            future.result(timeout=10.0)
        requests = [s for s in trace.spans if s.name == "serving.request"]
        batches = [s for s in trace.spans if s.name == "serving.batch"]
        assert len(requests) == 5
        # While the gate held the worker, later submissions coalesced.
        assert max(len(b.links) for b in batches) >= 2
        # Links are a bijection: every request span rides exactly one
        # batch, and the batches together cover all of them.
        assert {sid for b in batches for sid in b.links} == {
            r.span_id for r in requests
        }
        by_id = {b.span_id: b for b in batches}
        for r in requests:
            assert len(r.links) == 1 and r.links[0] in by_id
            assert r.request_id in by_id[r.links[0]].attributes["request_ids"]

    def test_untraced_service_records_no_identity(self):
        art = _blob_artifact()
        sample = [q[0] for q in _queries(art, m=1)]
        with PredictionService(Predictor(art)) as service:
            assert isinstance(service.predict_one(sample), int)
        # No construction-time trace: the id bookkeeping is skipped
        # entirely (the disabled path stays one attribute check).
        assert service._trace is None
