"""Tests for repro.metrics.nmi."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.metrics.nmi import (
    entropy,
    mutual_information,
    normalized_mutual_information,
)

label_vectors = st.lists(st.integers(0, 4), min_size=2, max_size=40)


class TestEntropy:
    def test_uniform_two_classes(self):
        assert entropy([0, 1]) == pytest.approx(np.log(2))

    def test_single_class_zero(self):
        assert entropy([3, 3, 3]) == 0.0

    def test_skewed_less_than_uniform(self):
        assert entropy([0, 0, 0, 1]) < entropy([0, 0, 1, 1])


class TestMutualInformation:
    def test_identical_equals_entropy(self):
        labels = [0, 0, 1, 1, 2]
        assert mutual_information(labels, labels) == pytest.approx(entropy(labels))

    def test_independent_near_zero(self):
        # A perfectly balanced independent pair has exactly zero MI.
        t = [0, 0, 1, 1]
        p = [0, 1, 0, 1]
        assert mutual_information(t, p) == pytest.approx(0.0, abs=1e-12)

    def test_nonnegative(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            t = rng.integers(0, 4, size=30)
            p = rng.integers(0, 3, size=30)
            assert mutual_information(t, p) >= 0.0


class TestNMI:
    def test_perfect_is_one(self):
        assert normalized_mutual_information([0, 0, 1, 1], [1, 1, 0, 0]) == 1.0

    def test_independent_is_zero(self):
        assert normalized_mutual_information([0, 0, 1, 1], [0, 1, 0, 1]) == pytest.approx(0.0, abs=1e-12)

    def test_both_trivial(self):
        assert normalized_mutual_information([0, 0], [5, 5]) == 1.0

    def test_one_trivial(self):
        assert normalized_mutual_information([0, 1], [5, 5]) == 0.0

    @pytest.mark.parametrize("average", ["geometric", "arithmetic", "max", "min"])
    def test_all_normalizations_bounded(self, average):
        rng = np.random.default_rng(1)
        t = rng.integers(0, 4, size=50)
        p = rng.integers(0, 5, size=50)
        v = normalized_mutual_information(t, p, average=average)
        assert 0.0 <= v <= 1.0

    def test_min_ge_geometric_ge_max(self):
        rng = np.random.default_rng(2)
        t = rng.integers(0, 3, size=60)
        p = rng.integers(0, 5, size=60)
        v_min = normalized_mutual_information(t, p, average="min")
        v_geo = normalized_mutual_information(t, p, average="geometric")
        v_max = normalized_mutual_information(t, p, average="max")
        assert v_min >= v_geo >= v_max

    def test_unknown_average(self):
        with pytest.raises(ValidationError):
            normalized_mutual_information([0, 1], [0, 1], average="bogus")

    @settings(deadline=None, max_examples=50)
    @given(label_vectors)
    def test_property_symmetry(self, labels):
        rng = np.random.default_rng(0)
        pred = rng.integers(0, 3, size=len(labels))
        a = normalized_mutual_information(labels, pred)
        b = normalized_mutual_information(pred, labels)
        assert a == pytest.approx(b, abs=1e-10)

    @settings(deadline=None, max_examples=50)
    @given(label_vectors)
    def test_property_relabeling_invariance(self, labels):
        labels = np.array(labels)
        assert normalized_mutual_information(labels, (labels + 2) % 5) == pytest.approx(1.0, abs=1e-9)


class TestMIAdditionalProperties:
    def test_mi_bounded_by_entropies(self):
        rng = np.random.default_rng(5)
        for _ in range(15):
            t = rng.integers(0, 4, size=50)
            p = rng.integers(0, 5, size=50)
            mi = mutual_information(t, p)
            assert mi <= entropy(t) + 1e-10
            assert mi <= entropy(p) + 1e-10

    def test_data_processing_merge_cannot_increase_mi(self):
        # Merging two predicted clusters is a deterministic function of the
        # prediction: MI with the truth cannot increase.
        rng = np.random.default_rng(6)
        t = rng.integers(0, 3, size=80)
        p = rng.integers(0, 4, size=80)
        merged = np.where(p == 3, 2, p)
        assert mutual_information(t, merged) <= mutual_information(t, p) + 1e-10
