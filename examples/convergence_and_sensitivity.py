"""Convergence behaviour and parameter sensitivity of the framework.

Reproduces, in miniature, the paper's two diagnostic figures: the monotone
objective descent (Figure 1) and the lambda plateau (Figure 2).  Run
with::

    python examples/convergence_and_sensitivity.py
"""

from repro import UnifiedMVSC, evaluate_clustering, load_benchmark
from repro.evaluation.curves import convergence_curve, sparkline


def main() -> None:
    dataset = load_benchmark("msrcv1")
    print(dataset.summary())

    print("\nconvergence (objective per outer iteration):")
    curve = convergence_curve(dataset, max_iter=25, random_state=0)
    print(" ", sparkline(curve.history))
    for i, value in enumerate(curve.history, start=1):
        print(f"  iter {i:>2}: {value:.6f}")

    print("\nlambda sensitivity (ACC per trade-off value):")
    for lam in (0.001, 0.01, 0.1, 1.0, 10.0, 100.0):
        result = UnifiedMVSC(
            dataset.n_clusters, lam=lam, random_state=0
        ).fit(dataset.views)
        acc = evaluate_clustering(dataset.labels, result.labels)["acc"]
        print(f"  lambda={lam:<8} ACC={acc:.3f}")


if __name__ == "__main__":
    main()
