"""Bring your own multi-view data.

Shows the full round trip a downstream user needs: wrap raw arrays in a
:class:`MultiViewDataset`, persist it as an ``.npz`` archive, reload it,
and cluster — including the precomputed-affinity entry point for users who
build their own graphs.  Run with::

    python examples/custom_dataset.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import MultiViewDataset, UnifiedMVSC, evaluate_clustering
from repro.datasets import load_dataset, save_dataset
from repro.graph import build_view_affinity


def synthesize_views(n_per_cluster=40, seed=7):
    """Pretend these came from your own pipeline: two feature extractors."""
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [6.0, 0.0], [3.0, 5.0]])
    points = np.vstack(
        [c + rng.normal(scale=0.8, size=(n_per_cluster, 2)) for c in centers]
    )
    labels = np.repeat(np.arange(3), n_per_cluster)
    # View 1: raw coordinates plus nuisance dimensions.
    view1 = np.hstack([points, rng.normal(size=(points.shape[0], 6))])
    # View 2: a nonlinear rendering (distances to random landmarks).
    landmarks = rng.uniform(-2, 8, size=(12, 2))
    view2 = np.linalg.norm(
        points[:, None, :] - landmarks[None, :, :], axis=2
    )
    return [view1, view2], labels


def main() -> None:
    views, labels = synthesize_views()
    dataset = MultiViewDataset(
        name="my-sensors",
        views=views,
        labels=labels,
        view_names=["coordinates", "landmark-distances"],
        description="toy example of user-supplied multi-view data",
    )
    print(dataset.summary())

    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "my_sensors.npz")
        save_dataset(dataset, path)
        reloaded = load_dataset(path)
        print(f"saved and reloaded: {reloaded.summary()}")

    # Path A: let the library build the graphs.
    result = UnifiedMVSC(3, random_state=0).fit(dataset.views)
    print("auto graphs  :", evaluate_clustering(dataset.labels, result.labels))

    # Path B: bring your own affinities (any symmetric non-negative graphs).
    affinities = [
        build_view_affinity(v, kind="self_tuning", k=12) for v in dataset.views
    ]
    result = UnifiedMVSC(3, random_state=0).fit_affinities(affinities)
    print("custom graphs:", evaluate_clustering(dataset.labels, result.labels))


if __name__ == "__main__":
    main()
