"""Multi-view document clustering (the paper's text scenario).

News stories described by several text sources (the 3-Sources setting:
BBC / Reuters / Guardian term vectors).  Shows why multi-view beats any
single view and how the framework's auto-weighting reacts to source
quality.  Run with::

    python examples/document_clustering.py
"""

from repro import UnifiedMVSC, evaluate_clustering, load_benchmark
from repro.baselines import ConcatSC, all_single_view_labels


def main() -> None:
    dataset = load_benchmark("three_sources")
    print(dataset.summary())
    print()

    c = dataset.n_clusters

    print("single-view spectral clustering (per source):")
    per_view = all_single_view_labels(dataset.views, c, random_state=0)
    for name, labels in zip(dataset.view_names, per_view):
        scores = evaluate_clustering(dataset.labels, labels)
        print(f"  {name:<14} ACC={scores['acc']:.3f}  NMI={scores['nmi']:.3f}")

    concat = ConcatSC(c, random_state=0).fit_predict(dataset.views)
    scores = evaluate_clustering(dataset.labels, concat)
    print(f"\nconcatenation SC: ACC={scores['acc']:.3f}  NMI={scores['nmi']:.3f}")

    result = UnifiedMVSC(c, random_state=0).fit(dataset.views)
    scores = evaluate_clustering(dataset.labels, result.labels)
    print(f"unified (UMSC):   ACC={scores['acc']:.3f}  NMI={scores['nmi']:.3f}")
    print("\nlearned view weights (higher = source trusted more):")
    for name, weight in zip(dataset.view_names, result.view_weights):
        bar = "#" * int(60 * weight / max(result.view_weights))
        print(f"  {name:<14} {weight:.3f} {bar}")


if __name__ == "__main__":
    main()
