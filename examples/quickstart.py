"""Quickstart: cluster a multi-view benchmark in five lines.

Loads the MSRC-v1-shaped benchmark, runs the unified one-stage framework,
and prints the headline metrics.  Run with::

    python examples/quickstart.py
"""

from repro import UnifiedMVSC, evaluate_clustering, load_benchmark


def main() -> None:
    dataset = load_benchmark("msrcv1")
    print(dataset.summary())

    model = UnifiedMVSC(dataset.n_clusters, random_state=0)
    result = model.fit(dataset.views)

    scores = evaluate_clustering(dataset.labels, result.labels)
    print(f"converged in {result.n_iter} iterations "
          f"(objective {result.objective:.4f})")
    print("view weights:", [round(float(w), 3) for w in result.view_weights])
    for name, value in scores.items():
        print(f"{name:>7}: {value:.3f}")


if __name__ == "__main__":
    main()
