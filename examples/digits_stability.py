"""One-stage vs two-stage stability on a digits-style dataset.

The paper's argument against the two-stage pipeline is not only accuracy:
K-means discretization re-rolls the dice every run.  This example runs
both variants over ten seeds on a handwritten-numerals-shaped dataset
(scaled down for speed) and prints the per-seed spread.  Run with::

    python examples/digits_stability.py
"""

import numpy as np

from repro import TwoStageMVSC, UnifiedMVSC, evaluate_clustering
from repro.datasets import make_multiview_blobs


def make_digits(n=600):
    """A six-view digits-shaped dataset (mfeat layout, reduced n)."""
    return make_multiview_blobs(
        n,
        10,
        view_dims=(240, 76, 216, 47, 64, 6),
        view_noise=(0.65, 0.4, 0.25, 0.5, 0.35, 0.9),
        separation=3.8,
        manifold=1.5,
        name="digits-small",
        random_state=0,
    )


def main() -> None:
    dataset = make_digits()
    print(dataset.summary())
    print()

    seeds = range(10)
    one_stage, two_stage = [], []
    for seed in seeds:
        result = UnifiedMVSC(10, random_state=seed).fit(dataset.views)
        one_stage.append(
            evaluate_clustering(dataset.labels, result.labels)["acc"]
        )
        labels = TwoStageMVSC(10, random_state=seed).fit_predict(dataset.views)
        two_stage.append(evaluate_clustering(dataset.labels, labels)["acc"])

    print("seed   one-stage ACC   two-stage ACC")
    for seed, (a, b) in enumerate(zip(one_stage, two_stage)):
        print(f"{seed:>4}   {a:.3f}           {b:.3f}")
    print("-" * 38)
    print(
        f"mean   {np.mean(one_stage):.3f}±{np.std(one_stage):.3f}     "
        f"{np.mean(two_stage):.3f}±{np.std(two_stage):.3f}"
    )


if __name__ == "__main__":
    main()
