"""Incomplete views and out-of-sample assignment.

Two situations every production clustering system hits:

1. **incomplete views** — some samples are missing from some views
   (:class:`repro.core.incomplete.IncompleteMVSC` fuses whatever evidence
   exists per pair);
2. **new samples after fitting** — spectral methods are transductive, so
   late arrivals are assigned by multi-view kernel voting
   (:func:`repro.core.out_of_sample.propagate_labels`).

Run with::

    python examples/incomplete_and_streaming.py
"""

import numpy as np

from repro import UnifiedMVSC, evaluate_clustering
from repro.core import IncompleteMVSC, propagate_labels
from repro.datasets import make_multiview_blobs


def main() -> None:
    rng = np.random.default_rng(0)
    dataset = make_multiview_blobs(
        300,
        4,
        view_dims=(15, 20),
        view_noise=(0.2, 0.35),
        confusion_schedule=[[], []],
        separation=5.5,
        random_state=1,
    )
    print(dataset.summary())

    # --- Scenario 1: 30% of samples missing from each view -----------------
    masks = [rng.random(300) >= 0.3 for _ in range(2)]
    coverage = masks[0] | masks[1]
    masks[0] = masks[0] | ~coverage  # ensure everyone is seen somewhere

    labels = IncompleteMVSC(4, random_state=0).fit_predict(dataset.views, masks)
    scores = evaluate_clustering(dataset.labels, labels)
    observed = [int(m.sum()) for m in masks]
    print(f"\nincomplete views (observed per view: {observed}):")
    print(f"  ACC={scores['acc']:.3f}  NMI={scores['nmi']:.3f}")

    # --- Scenario 2: fit on 80%, assign the remaining 20% ------------------
    perm = rng.permutation(300)
    train_idx, new_idx = perm[:240], perm[240:]
    train_views = [v[train_idx] for v in dataset.views]
    new_views = [v[new_idx] for v in dataset.views]

    result = UnifiedMVSC(4, random_state=0).fit(train_views)
    new_labels = propagate_labels(
        train_views,
        result.labels,
        new_views,
        view_weights=result.view_weights,
    )
    scores = evaluate_clustering(dataset.labels[new_idx], new_labels)
    print("\nout-of-sample assignment of 60 unseen samples:")
    print(f"  ACC={scores['acc']:.3f}  NMI={scores['nmi']:.3f}")


if __name__ == "__main__":
    main()
