"""Scaling the framework: dense vs anchor vs sparse pipelines.

Three ways to run the unified framework as ``n`` grows:

* **dense** (`UnifiedMVSC`) — the full model, `O(n^2)` memory;
* **anchor** (`AnchorMVSC`) — low-rank anchor graphs, linear memory,
  fastest, approximate neighborhoods;
* **sparse** (`SparseMVSC`) — exact k-NN neighborhoods in CSR, linear
  memory, between the two in cost.

Run with::

    python examples/scaling.py
"""

import time

from repro import AnchorMVSC, SparseMVSC, UnifiedMVSC, evaluate_clustering
from repro.datasets import make_multiview_blobs


def main() -> None:
    dataset = make_multiview_blobs(
        1000,
        5,
        view_dims=(30, 40),
        view_noise=(0.2, 0.4),
        separation=5.5,
        name="scaling-demo",
        random_state=0,
    )
    print(dataset.summary())
    print()

    variants = {
        "dense  (UnifiedMVSC)": lambda: UnifiedMVSC(5, random_state=0)
        .fit(dataset.views)
        .labels,
        "anchor (AnchorMVSC) ": lambda: AnchorMVSC(
            5, random_state=0
        ).fit_predict(dataset.views),
        "sparse (SparseMVSC) ": lambda: SparseMVSC(
            5, random_state=0
        ).fit_predict(dataset.views),
    }
    print(f"{'variant':<22} {'ACC':>6} {'NMI':>6} {'time':>8}")
    for name, run in variants.items():
        start = time.perf_counter()
        labels = run()
        elapsed = time.perf_counter() - start
        scores = evaluate_clustering(dataset.labels, labels)
        print(
            f"{name:<22} {scores['acc']:>6.3f} {scores['nmi']:>6.3f} "
            f"{elapsed:>7.1f}s"
        )


if __name__ == "__main__":
    main()
